//! Bounded acyclic path enumeration over the jungloid graph.
//!
//! §3.1: "solution jungloids can be enumerated by standard graph search
//! algorithms … all the desired solution jungloids we have observed so far
//! are acyclic, so we limit our search to acyclic paths."
//!
//! §5: "we configured the graph search library to construct all paths of
//! length less than or equal to *m + 1* where *m* is the length of the
//! shortest path for the query" — length counts non-widening steps
//! (widenings are free, §3.2). We implement that as a 0/1-weighted
//! multi-source shortest-path pass (0-1 BFS), followed by a depth-first
//! enumeration pruned with exact distance-to-target lower bounds, so the
//! enumeration only ever walks prefixes that can still finish within the
//! bound.

use std::collections::VecDeque;

use jungloid_apidef::ElemJungloid;
use jungloid_typesys::TyId;

use crate::graph::{CsrAdjacency, JungloidGraph, NodeId};
use crate::path::Jungloid;

/// Enumeration limits and the `m + extra` window.
///
/// `Hash` because the engine's result cache keys on the full search
/// configuration: two queries differing in any limit may legitimately
/// produce different (truncated) result sets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SearchConfig {
    /// Paths up to `m + extra_steps` non-widening steps are produced
    /// (paper: 1).
    pub extra_steps: u32,
    /// Hard cap on produced paths.
    pub max_results: usize,
    /// Hard cap on DFS edge expansions (safety valve for pathological
    /// graphs). This budget covers the depth-first enumeration *only*:
    /// edge relaxations spent by the 0-1 BFS pre-pass
    /// ([`DistanceField::towards`]) are accounted separately (the
    /// `search.bfs_relaxations` counter) and never eat into it.
    pub max_expansions: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig { extra_steps: 1, max_results: 10_000, max_expansions: 5_000_000 }
    }
}

/// Which cap (if any) stopped an enumeration early.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TruncationReason {
    /// The enumeration ran to completion.
    #[default]
    None,
    /// [`SearchConfig::max_results`] paths were produced.
    PathCap,
    /// [`SearchConfig::max_expansions`] DFS edge expansions were spent.
    ExpansionCap,
}

impl TruncationReason {
    /// Whether any cap fired.
    #[must_use]
    pub fn truncated(self) -> bool {
        self != TruncationReason::None
    }

    /// Stable lower-case label (`"none"`, `"path_cap"`,
    /// `"expansion_cap"`) for reports and metrics.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TruncationReason::None => "none",
            TruncationReason::PathCap => "path_cap",
            TruncationReason::ExpansionCap => "expansion_cap",
        }
    }
}

impl std::fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The result of one enumeration.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// All solution jungloids found, unranked (enumeration order).
    pub jungloids: Vec<Jungloid>,
    /// Shortest length `m` (non-widening steps), if any path exists.
    pub shortest: Option<u32>,
    /// Which cap (if any) stopped the enumeration early.
    pub truncation: TruncationReason,
    /// DFS edge expansions spent, the quantity
    /// [`SearchConfig::max_expansions`] bounds. Excludes the 0-1 BFS
    /// pre-pass, whose relaxations have their own budget-free counter.
    pub expansions: usize,
}

/// Distances from every node *to* a fixed target, in non-widening steps.
///
/// Reusable across queries with the same target; the engine caches these.
#[derive(Clone, Debug)]
pub struct DistanceField {
    target: TyId,
    dist: Vec<u32>,
    /// Edge relaxations the 0-1 BFS spent building this field. Kept on
    /// the field so the engine can attribute the build cost to the one
    /// query that missed the cache (cache hits charge 0).
    relaxations: u64,
}

impl DistanceField {
    /// Runs a reverse 0-1 BFS from `target` over the CSR reverse arrays.
    ///
    /// Relaxations performed here are reported via the
    /// `search.bfs_relaxations` counter and are *not* charged against
    /// [`SearchConfig::max_expansions`], which budgets the DFS alone.
    #[must_use]
    pub fn towards(graph: &JungloidGraph, target: TyId) -> Self {
        let csr = graph.csr();
        let n = csr.node_count();
        let rev_from = csr.in_from();
        let rev_cost = csr.in_cost();
        let mut dist = vec![u32::MAX; n];
        let ti = u32::try_from(graph.index_of(NodeId::Ty(target))).expect("node fits u32");
        let mut queue: VecDeque<u32> = VecDeque::new();
        dist[ti as usize] = 0;
        queue.push_back(ti);
        let mut relaxations: u64 = 0;
        while let Some(i) = queue.pop_front() {
            let d = dist[i as usize];
            let range = csr.in_range(i as usize);
            relaxations += range.len() as u64;
            for (&from, &cost) in rev_from[range.clone()].iter().zip(&rev_cost[range]) {
                let nd = d + u32::from(cost);
                if nd < dist[from as usize] {
                    dist[from as usize] = nd;
                    if cost == 0 {
                        queue.push_front(from);
                    } else {
                        queue.push_back(from);
                    }
                }
            }
        }
        prospector_obs::add("search.bfs_relaxations", relaxations);
        DistanceField { target, dist, relaxations }
    }

    /// Edge relaxations the 0-1 BFS spent building this field.
    #[must_use]
    pub fn relaxations(&self) -> u64 {
        self.relaxations
    }

    /// The target this field points at.
    #[must_use]
    pub fn target(&self) -> TyId {
        self.target
    }

    /// Distance from `node` to the target (`u32::MAX` if unreachable).
    #[must_use]
    pub fn from(&self, graph: &JungloidGraph, node: NodeId) -> u32 {
        self.dist[graph.index_of(node)]
    }

    /// The raw dense-indexed distance array (hot-path access).
    pub(crate) fn raw(&self) -> &[u32] {
        &self.dist
    }
}

/// Reusable per-query search state: the DFS stack, the on-path marks, and
/// the element buffer. One instance per worker thread, reset (cheaply)
/// between queries, so the hot path allocates only for produced paths.
#[derive(Debug, Default)]
pub struct SearchScratch {
    /// Acyclicity marks, dense-indexed; all `false` between queries.
    on_path: Vec<bool>,
    /// Explicit DFS stack (replaces recursion).
    stack: Vec<Frame>,
    /// Elements of the path currently being walked.
    elems: Vec<ElemJungloid>,
    /// Per-edge traversal tallies (flat CSR edge index); all zero between
    /// queries. Sized only while heat accounting is enabled.
    edge_heat: Vec<u32>,
    /// Per-node visit tallies (dense node index); all zero between
    /// queries.
    node_heat: Vec<u32>,
    /// Edge indices with a nonzero tally this query. Capacity is reserved
    /// at reset so the hot-loop push never allocates.
    touched_edges: Vec<u32>,
    /// Node indices with a nonzero tally this query.
    touched_nodes: Vec<u32>,
}

impl SearchScratch {
    /// A fresh scratch; buffers grow to fit the graph on first use.
    #[must_use]
    pub fn new() -> Self {
        SearchScratch::default()
    }

    fn reset(&mut self, nodes: usize, edges: usize, heat: bool) {
        debug_assert!(self.on_path.iter().all(|&b| !b), "scratch left dirty");
        debug_assert!(
            self.touched_nodes.is_empty() && self.touched_edges.is_empty(),
            "heat tallies left dirty"
        );
        if self.on_path.len() != nodes {
            self.on_path.clear();
            self.on_path.resize(nodes, false);
        }
        self.stack.clear();
        self.elems.clear();
        if heat {
            if self.node_heat.len() != nodes {
                self.node_heat.clear();
                self.node_heat.resize(nodes, 0);
                self.touched_nodes.reserve(nodes);
            }
            if self.edge_heat.len() != edges {
                self.edge_heat.clear();
                self.edge_heat.resize(edges, 0);
                self.touched_edges.reserve(edges);
            }
        }
    }

    /// Fold this query's heat tallies into the global table and zero
    /// them, restoring the clean-tally invariant [`reset`] asserts.
    fn flush_heat(&mut self, epoch: u64, nodes: usize, edges: usize) {
        crate::heat::merge_raw(
            epoch,
            nodes,
            edges,
            &self.touched_nodes,
            &self.node_heat,
            &self.touched_edges,
            &self.edge_heat,
        );
        for &i in &self.touched_nodes {
            self.node_heat[i as usize] = 0;
        }
        self.touched_nodes.clear();
        for &i in &self.touched_edges {
            self.edge_heat[i as usize] = 0;
        }
        self.touched_edges.clear();
    }
}

/// One explicit-stack DFS frame: a node and a cursor over its CSR edge
/// range.
#[derive(Clone, Copy, Debug)]
struct Frame {
    /// Dense node index this frame walks from.
    at: u32,
    /// Next edge to try (flat index into the CSR forward arrays).
    cursor: u32,
    /// One past the last edge of `at`.
    end: u32,
    /// Non-widening steps spent reaching `at`.
    cost: u32,
}

/// Enumerates all acyclic solution jungloids for sources → `target`
/// within `m + extra_steps`, where `m` is the global shortest length over
/// all sources (the paper's multi-starting-point search, §5).
///
/// Sources that cannot reach the target contribute nothing. The empty
/// jungloid (`source == target`) is never produced.
#[must_use]
pub fn enumerate(
    graph: &JungloidGraph,
    sources: &[TyId],
    target: TyId,
    field: &DistanceField,
    config: &SearchConfig,
) -> SearchOutcome {
    enumerate_with(graph, sources, target, field, config, &mut SearchScratch::new())
}

/// [`enumerate`] with caller-owned scratch buffers, the form the engine's
/// batch workers use: one [`SearchScratch`] per thread amortizes the
/// `O(nodes)` mark array and the stack across queries.
#[must_use]
pub fn enumerate_with(
    graph: &JungloidGraph,
    sources: &[TyId],
    target: TyId,
    field: &DistanceField,
    config: &SearchConfig,
    scratch: &mut SearchScratch,
) -> SearchOutcome {
    assert_eq!(field.target(), target, "distance field target mismatch");
    let csr = graph.csr();
    // Hoisted once per query: the hot loop branches on a local bool, not
    // an atomic.
    let heat = crate::heat::enabled();
    scratch.reset(csr.node_count(), csr.edge_count(), heat);
    // Dedup sources in first-occurrence order (enumeration order is part
    // of the engine's contract) by borrowing the on-path mark array: mark,
    // collect, unmark — O(sources) instead of the quadratic
    // `Vec::contains` scan, which matters for assist queries over scopes
    // with many same-typed variables.
    let mut uniq_sources: Vec<TyId> = Vec::with_capacity(sources.len().min(csr.node_count()));
    for &s in sources {
        let idx = graph.index_of(NodeId::Ty(s));
        if !scratch.on_path[idx] {
            scratch.on_path[idx] = true;
            uniq_sources.push(s);
        }
    }
    for &s in &uniq_sources {
        scratch.on_path[graph.index_of(NodeId::Ty(s))] = false;
    }
    let m = uniq_sources
        .iter()
        .map(|&s| field.from(graph, NodeId::Ty(s)))
        .filter(|&d| d != u32::MAX)
        .min();
    let Some(m) = m else {
        return SearchOutcome {
            jungloids: Vec::new(),
            shortest: None,
            truncation: TruncationReason::None,
            expansions: 0,
        };
    };
    let bound = m + config.extra_steps;
    // Preallocate the walk buffers so the enumeration loop itself never
    // grows a Vec: a path holds at most `bound` costed steps (plus a few
    // interleaved zero-cost widenings), and the produced-path buffer is
    // bounded by `max_results` but rarely approaches it — the immediate
    // fan-out of the reachable sources is the cheaper first estimate.
    scratch.elems.reserve(bound as usize + 8);
    scratch.stack.reserve(bound as usize + 9);
    let fanout: usize = uniq_sources
        .iter()
        .filter(|&&s| field.from(graph, NodeId::Ty(s)) != u32::MAX)
        .map(|&s| csr.out_range(graph.index_of(NodeId::Ty(s))).len())
        .sum();
    let mut dfs = Dfs {
        csr,
        dist: field.raw(),
        target_idx: u32::try_from(graph.index_of(NodeId::Ty(target))).expect("node fits u32"),
        bound,
        config,
        heat,
        scratch,
        out: Vec::with_capacity(config.max_results.min(fanout)),
        expansions: 0,
        truncation: TruncationReason::None,
    };
    for &s in &uniq_sources {
        if field.from(graph, NodeId::Ty(s)) == u32::MAX {
            continue;
        }
        let si = u32::try_from(graph.index_of(NodeId::Ty(s))).expect("node fits u32");
        dfs.walk(s, si);
        if dfs.truncation.truncated() {
            break;
        }
    }
    let Dfs { out, expansions, truncation, scratch, .. } = dfs;
    prospector_obs::add("search.dfs_expansions", expansions as u64);
    prospector_obs::add("search.paths_enumerated", out.len() as u64);
    match truncation {
        TruncationReason::None => {}
        TruncationReason::PathCap => prospector_obs::add("search.truncated.path_cap", 1),
        TruncationReason::ExpansionCap => prospector_obs::add("search.truncated.expansion_cap", 1),
    }
    if heat {
        scratch.flush_heat(graph.epoch(), csr.node_count(), csr.edge_count());
    }
    // `m` could be 0 when a source widens straight into the target; in that
    // case the shortest *produced* path still reports 0.
    SearchOutcome { jungloids: out, shortest: Some(m), truncation, expansions }
}

struct Dfs<'a> {
    csr: &'a CsrAdjacency,
    dist: &'a [u32],
    target_idx: u32,
    bound: u32,
    config: &'a SearchConfig,
    /// Whether to tally per-edge/per-node heat into the scratch
    /// (hoisted from [`crate::heat::enabled`] once per query).
    heat: bool,
    scratch: &'a mut SearchScratch,
    out: Vec<Jungloid>,
    expansions: usize,
    truncation: TruncationReason,
}

impl Dfs<'_> {
    /// Tally one examination of edge `ei`. The 0→1 transition enrolls the
    /// edge in the touched list (capacity pre-reserved: no allocation).
    #[inline]
    fn touch_edge(&mut self, ei: usize) {
        let h = &mut self.scratch.edge_heat[ei];
        if *h == 0 {
            self.scratch.touched_edges.push(ei as u32);
        }
        *h += 1;
    }

    /// Tally one visit of node `to` (a DFS step onto it or a target
    /// arrival).
    #[inline]
    fn touch_node(&mut self, to: u32) {
        let h = &mut self.scratch.node_heat[to as usize];
        if *h == 0 {
            self.scratch.touched_nodes.push(to);
        }
        *h += 1;
    }
}

impl Dfs<'_> {
    /// Walks all bounded acyclic paths from one source with an explicit
    /// stack, visiting edges in exactly the order the recursive
    /// formulation did (result order is part of the engine's contract).
    fn walk(&mut self, source: TyId, si: u32) {
        let fwd_to = self.csr.out_to();
        let fwd_cost = self.csr.out_cost();
        let fwd_elem = self.csr.out_elem();
        let range = self.csr.out_range(si as usize);
        if self.heat {
            self.touch_node(si);
        }
        self.scratch.on_path[si as usize] = true;
        self.scratch.stack.push(Frame {
            at: si,
            cursor: range.start as u32,
            end: range.end as u32,
            cost: 0,
        });
        while let Some(frame) = self.scratch.stack.last_mut() {
            if frame.cursor == frame.end {
                // Every edge of this node tried: unwind one level.
                let at = frame.at;
                self.scratch.stack.pop();
                self.scratch.on_path[at as usize] = false;
                if !self.scratch.stack.is_empty() {
                    self.scratch.elems.pop();
                }
                continue;
            }
            let ei = frame.cursor as usize;
            frame.cursor += 1;
            let cost = frame.cost;
            self.expansions += 1;
            if self.expansions > self.config.max_expansions {
                self.truncation = TruncationReason::ExpansionCap;
                break;
            }
            let to = fwd_to[ei];
            if self.heat {
                self.touch_edge(ei);
            }
            if self.scratch.on_path[to as usize] {
                continue;
            }
            let new_cost = cost + u32::from(fwd_cost[ei]);
            let to_go = self.dist[to as usize];
            if to_go == u32::MAX || new_cost + to_go > self.bound {
                continue;
            }
            if to == self.target_idx {
                if self.heat {
                    self.touch_node(to);
                }
                // Pure-widening paths contain no code ("you already have a
                // tout"); the engine reports those separately.
                self.scratch.elems.push(fwd_elem.get(ei));
                if self.scratch.elems.iter().any(|e| !e.is_widen()) {
                    self.out.push(Jungloid { source, elems: self.scratch.elems.clone() });
                    if self.out.len() >= self.config.max_results {
                        self.truncation = TruncationReason::PathCap;
                        self.scratch.elems.pop();
                        break;
                    }
                }
                self.scratch.elems.pop();
            } else {
                if self.heat {
                    self.touch_node(to);
                }
                self.scratch.elems.push(fwd_elem.get(ei));
                self.scratch.on_path[to as usize] = true;
                let range = self.csr.out_range(to as usize);
                self.scratch.stack.push(Frame {
                    at: to,
                    cursor: range.start as u32,
                    end: range.end as u32,
                    cost: new_cost,
                });
            }
        }
        // Leave the scratch clean even when a cap fired mid-walk.
        for f in self.scratch.stack.drain(..) {
            self.scratch.on_path[f.at as usize] = false;
        }
        self.scratch.elems.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphConfig;
    use jungloid_apidef::{Api, ApiLoader};

    fn api() -> Api {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "t.api",
                r"
                package t;
                public class A { B toB(); C toC(); }
                public class B { C toC(); D toD(); }
                public class C { D toD(); }
                public class D {}
                public class Sub extends D {}
                public class Maker { static Sub makeSub(); }
                ",
            )
            .unwrap();
        loader.finish().unwrap()
    }

    fn ty(api: &Api, name: &str) -> TyId {
        api.types().resolve(name).unwrap()
    }

    fn run(graph: &JungloidGraph, from: &[TyId], to: TyId) -> SearchOutcome {
        let field = DistanceField::towards(graph, to);
        enumerate(graph, from, to, &field, &SearchConfig::default())
    }

    #[test]
    fn finds_shortest_and_m_plus_one() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let d = ty(&api, "t.D");
        let outcome = run(&g, &[a], d);
        assert_eq!(outcome.shortest, Some(2)); // a.toB().toD() or a.toC().toD()
        let lengths: Vec<u32> = outcome.jungloids.iter().map(Jungloid::steps).collect();
        assert!(lengths.iter().all(|&l| l <= 3));
        assert!(lengths.contains(&2));
        // The length-3 chain a.toB().toC().toD() is within m+1 and present.
        assert!(lengths.contains(&3));
        // Every produced path is well-typed.
        for j in &outcome.jungloids {
            j.validate(&api).unwrap();
        }
    }

    #[test]
    fn widening_is_free_and_reaches_supertype_targets() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let void = api.types().void();
        let d = ty(&api, "t.D");
        // Maker.makeSub(): void -> Sub, widen Sub -> D costs 0.
        let outcome = run(&g, &[void], d);
        assert_eq!(outcome.shortest, Some(1));
        assert!(outcome
            .jungloids
            .iter()
            .any(|j| j.steps() == 1 && j.concrete_output_ty(&api) == ty(&api, "t.Sub")));
    }

    #[test]
    fn unreachable_yields_empty() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let d = ty(&api, "t.D");
        let a = ty(&api, "t.A");
        let outcome = run(&g, &[d], a);
        assert!(outcome.jungloids.is_empty());
        assert_eq!(outcome.shortest, None);
    }

    #[test]
    fn multi_source_uses_global_minimum() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let c = ty(&api, "t.C");
        let d = ty(&api, "t.D");
        // From C the distance is 1; from A it is 2. Global m = 1, so paths
        // from A of length 2 (= m+1) still appear, length-3 ones do not.
        let outcome = run(&g, &[a, c], d);
        assert_eq!(outcome.shortest, Some(1));
        let from_a: Vec<u32> = outcome
            .jungloids
            .iter()
            .filter(|j| j.source == a)
            .map(Jungloid::steps)
            .collect();
        assert!(!from_a.is_empty());
        assert!(from_a.iter().all(|&l| l == 2));
    }

    #[test]
    fn paths_are_acyclic() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let d = ty(&api, "t.D");
        let outcome = run(&g, &[a], d);
        for j in &outcome.jungloids {
            let mut seen = vec![j.source];
            for e in &j.elems {
                let current = e.output_ty(&api);
                // Types may repeat only through distinct mined nodes; in a
                // pure signature graph they must not repeat at all.
                assert!(!seen.contains(&current), "cycle in {}", j.describe(&api));
                seen.push(current);
            }
        }
    }

    #[test]
    fn max_results_truncates() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let d = ty(&api, "t.D");
        let field = DistanceField::towards(&g, d);
        let cfg = SearchConfig { max_results: 1, ..SearchConfig::default() };
        let outcome = enumerate(&g, &[a], d, &field, &cfg);
        assert_eq!(outcome.jungloids.len(), 1);
        assert_eq!(outcome.truncation, TruncationReason::PathCap);
        assert!(outcome.truncation.truncated());

        let cfg = SearchConfig { max_expansions: 2, ..SearchConfig::default() };
        let outcome = enumerate(&g, &[a], d, &field, &cfg);
        assert_eq!(outcome.truncation, TruncationReason::ExpansionCap);
        assert_eq!(outcome.truncation.label(), "expansion_cap");
    }

    /// Audit pin for the `max_expansions` accounting. On the fixture
    /// graph the query A -> D deterministically spends exactly this many
    /// DFS edge expansions; the 0-1 BFS pre-pass (which relaxes every
    /// in-edge of every reached node) must not be charged against the
    /// same budget. If this number drifts, the budget's meaning changed.
    #[test]
    fn expansion_accounting_is_dfs_only_and_pinned() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let d = ty(&api, "t.D");
        let field = DistanceField::towards(&g, d);
        let outcome = enumerate(&g, &[a], d, &field, &SearchConfig::default());
        assert!(!outcome.truncation.truncated());
        let spent = outcome.expansions;
        // The pinned count: A's 2 signature out-edges are both expanded,
        // and so on down the bounded frontier — 10 edge expansions total
        // for this fixture, independent of BFS work.
        assert_eq!(spent, 10);

        // Pin: an identical repeat query (distance field reused, fresh or
        // reused scratch) spends the identical budget.
        let again = enumerate(&g, &[a], d, &field, &SearchConfig::default());
        assert_eq!(again.expansions, spent);
        let mut scratch = SearchScratch::new();
        let with_scratch =
            enumerate_with(&g, &[a], d, &field, &SearchConfig::default(), &mut scratch);
        assert_eq!(with_scratch.expansions, spent);
        // Scratch reuse across queries changes nothing either.
        let reused = enumerate_with(&g, &[a], d, &field, &SearchConfig::default(), &mut scratch);
        assert_eq!(reused.expansions, spent);
        assert_eq!(reused.jungloids.len(), outcome.jungloids.len());

        // The regression this guards against: were BFS relaxations
        // double-counted into the DFS budget, a budget of exactly `spent`
        // would truncate (the fixture BFS performs >0 relaxations). It
        // must complete instead.
        let cfg = SearchConfig { max_expansions: spent, ..SearchConfig::default() };
        let exact = enumerate(&g, &[a], d, &field, &cfg);
        assert_eq!(exact.truncation, TruncationReason::None);
        assert_eq!(exact.jungloids.len(), outcome.jungloids.len());
        assert_eq!(exact.expansions, spent);

        // One short of the real cost does truncate — the budget is tight.
        let cfg = SearchConfig { max_expansions: spent - 1, ..SearchConfig::default() };
        let short = enumerate(&g, &[a], d, &field, &cfg);
        assert_eq!(short.truncation, TruncationReason::ExpansionCap);
    }

    #[test]
    fn scratch_reuse_survives_truncated_queries() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let d = ty(&api, "t.D");
        let field = DistanceField::towards(&g, d);
        let mut scratch = SearchScratch::new();
        // A truncated walk must leave the scratch clean...
        let cfg = SearchConfig { max_expansions: 2, ..SearchConfig::default() };
        let truncated = enumerate_with(&g, &[a], d, &field, &cfg, &mut scratch);
        assert_eq!(truncated.truncation, TruncationReason::ExpansionCap);
        // ...so a follow-up full query over the same scratch is unaffected.
        let full = enumerate_with(&g, &[a], d, &field, &SearchConfig::default(), &mut scratch);
        assert_eq!(full.truncation, TruncationReason::None);
        let fresh = enumerate(&g, &[a], d, &field, &SearchConfig::default());
        assert_eq!(full.jungloids.len(), fresh.jungloids.len());
        for (x, y) in full.jungloids.iter().zip(&fresh.jungloids) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.elems, y.elems);
        }
    }

    #[test]
    fn duplicate_sources_deduped() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let d = ty(&api, "t.D");
        let once = run(&g, &[a], d).jungloids.len();
        let twice = run(&g, &[a, a], d).jungloids.len();
        assert_eq!(once, twice);
    }

    /// The mark-array dedup must behave exactly like the old linear-scan
    /// one: first-occurrence order, duplicates dropped — even when the
    /// source list is pathologically repetitive (the case the O(n²) scan
    /// choked on).
    #[test]
    fn many_duplicate_sources_dedup_in_first_occurrence_order() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let b = ty(&api, "t.B");
        let c = ty(&api, "t.C");
        let d = ty(&api, "t.D");

        // 30k sources, 3 distinct, interleaved so order matters.
        let mut noisy: Vec<TyId> = Vec::new();
        for _ in 0..10_000 {
            noisy.extend_from_slice(&[a, c, b, a, c]);
        }
        let deduped = run(&g, &[a, c, b], d);
        let from_noisy = run(&g, &noisy, d);
        assert_eq!(deduped.shortest, from_noisy.shortest);
        assert_eq!(deduped.jungloids.len(), from_noisy.jungloids.len());
        for (x, y) in deduped.jungloids.iter().zip(&from_noisy.jungloids) {
            assert_eq!(x.source, y.source, "enumeration order must be preserved");
            assert_eq!(x.elems, y.elems);
        }
        // Scratch is left clean for the next query on the same buffers.
        let mut scratch = SearchScratch::new();
        let field = DistanceField::towards(&g, d);
        let first =
            enumerate_with(&g, &noisy, d, &field, &SearchConfig::default(), &mut scratch);
        let second =
            enumerate_with(&g, &[a, c, b], d, &field, &SearchConfig::default(), &mut scratch);
        assert_eq!(first.jungloids.len(), second.jungloids.len());
    }

    #[test]
    fn mined_paths_are_searchable() {
        use jungloid_apidef::{ElemJungloid, InputSlot};
        let api = api();
        let mut g = JungloidGraph::from_api(&api, GraphConfig::default());
        let b = ty(&api, "t.B");
        let d = ty(&api, "t.D");
        let sub = ty(&api, "t.Sub");
        let to_d = api.lookup_instance_method(b, "toD", 0)[0];
        g.add_example(
            &api,
            &[
                ElemJungloid::Call { method: to_d, input: Some(InputSlot::Receiver) },
                ElemJungloid::Downcast { from: d, to: sub },
            ],
        )
        .unwrap();
        let outcome = run(&g, &[b], sub);
        assert_eq!(outcome.shortest, Some(2));
        assert!(outcome.jungloids.iter().any(Jungloid::contains_downcast));
        for j in &outcome.jungloids {
            j.validate(&api).unwrap();
        }
    }
}
