//! Bounded acyclic path enumeration over the jungloid graph.
//!
//! §3.1: "solution jungloids can be enumerated by standard graph search
//! algorithms … all the desired solution jungloids we have observed so far
//! are acyclic, so we limit our search to acyclic paths."
//!
//! §5: "we configured the graph search library to construct all paths of
//! length less than or equal to *m + 1* where *m* is the length of the
//! shortest path for the query" — length counts non-widening steps
//! (widenings are free, §3.2). We implement that as a 0/1-weighted
//! multi-source shortest-path pass (0-1 BFS), followed by a depth-first
//! enumeration pruned with exact distance-to-target lower bounds, so the
//! enumeration only ever walks prefixes that can still finish within the
//! bound.

use std::collections::VecDeque;

use jungloid_typesys::TyId;

use crate::graph::{JungloidGraph, NodeId};
use crate::path::Jungloid;

/// Enumeration limits and the `m + extra` window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchConfig {
    /// Paths up to `m + extra_steps` non-widening steps are produced
    /// (paper: 1).
    pub extra_steps: u32,
    /// Hard cap on produced paths.
    pub max_results: usize,
    /// Hard cap on DFS edge expansions (safety valve for pathological
    /// graphs).
    pub max_expansions: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig { extra_steps: 1, max_results: 10_000, max_expansions: 5_000_000 }
    }
}

/// Which cap (if any) stopped an enumeration early.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TruncationReason {
    /// The enumeration ran to completion.
    #[default]
    None,
    /// [`SearchConfig::max_results`] paths were produced.
    PathCap,
    /// [`SearchConfig::max_expansions`] DFS edge expansions were spent.
    ExpansionCap,
}

impl TruncationReason {
    /// Whether any cap fired.
    #[must_use]
    pub fn truncated(self) -> bool {
        self != TruncationReason::None
    }

    /// Stable lower-case label (`"none"`, `"path_cap"`,
    /// `"expansion_cap"`) for reports and metrics.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TruncationReason::None => "none",
            TruncationReason::PathCap => "path_cap",
            TruncationReason::ExpansionCap => "expansion_cap",
        }
    }
}

impl std::fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The result of one enumeration.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// All solution jungloids found, unranked (enumeration order).
    pub jungloids: Vec<Jungloid>,
    /// Shortest length `m` (non-widening steps), if any path exists.
    pub shortest: Option<u32>,
    /// Which cap (if any) stopped the enumeration early.
    pub truncation: TruncationReason,
}

/// Distances from every node *to* a fixed target, in non-widening steps.
///
/// Reusable across queries with the same target; the engine caches these.
#[derive(Clone, Debug)]
pub struct DistanceField {
    target: TyId,
    dist: Vec<u32>,
}

impl DistanceField {
    /// Runs a reverse 0-1 BFS from `target`.
    #[must_use]
    pub fn towards(graph: &JungloidGraph, target: TyId) -> Self {
        let n = graph.node_count();
        let mut dist = vec![u32::MAX; n];
        let ti = graph.index_of(NodeId::Ty(target));
        let mut queue = VecDeque::new();
        dist[ti] = 0;
        queue.push_back(ti);
        while let Some(i) = queue.pop_front() {
            let d = dist[i];
            for &(from, cost) in graph.in_edges(graph.node_at(i)) {
                let fi = graph.index_of(from);
                let nd = d + u32::from(cost);
                if nd < dist[fi] {
                    dist[fi] = nd;
                    if cost == 0 {
                        queue.push_front(fi);
                    } else {
                        queue.push_back(fi);
                    }
                }
            }
        }
        DistanceField { target, dist }
    }

    /// The target this field points at.
    #[must_use]
    pub fn target(&self) -> TyId {
        self.target
    }

    /// Distance from `node` to the target (`u32::MAX` if unreachable).
    #[must_use]
    pub fn from(&self, graph: &JungloidGraph, node: NodeId) -> u32 {
        self.dist[graph.index_of(node)]
    }
}

/// Enumerates all acyclic solution jungloids for sources → `target`
/// within `m + extra_steps`, where `m` is the global shortest length over
/// all sources (the paper's multi-starting-point search, §5).
///
/// Sources that cannot reach the target contribute nothing. The empty
/// jungloid (`source == target`) is never produced.
#[must_use]
pub fn enumerate(
    graph: &JungloidGraph,
    sources: &[TyId],
    target: TyId,
    field: &DistanceField,
    config: &SearchConfig,
) -> SearchOutcome {
    assert_eq!(field.target(), target, "distance field target mismatch");
    let mut uniq_sources: Vec<TyId> = Vec::new();
    for &s in sources {
        if !uniq_sources.contains(&s) {
            uniq_sources.push(s);
        }
    }
    let m = uniq_sources
        .iter()
        .map(|&s| field.from(graph, NodeId::Ty(s)))
        .filter(|&d| d != u32::MAX)
        .min();
    let Some(m) = m else {
        return SearchOutcome {
            jungloids: Vec::new(),
            shortest: None,
            truncation: TruncationReason::None,
        };
    };
    let bound = m + config.extra_steps;

    let mut dfs = Dfs {
        graph,
        field,
        target_idx: graph.index_of(NodeId::Ty(target)),
        bound,
        config,
        on_path: vec![false; graph.node_count()],
        elems: Vec::new(),
        out: Vec::new(),
        expansions: 0,
        truncation: TruncationReason::None,
    };
    for &s in &uniq_sources {
        if field.from(graph, NodeId::Ty(s)) == u32::MAX {
            continue;
        }
        let si = graph.index_of(NodeId::Ty(s));
        dfs.on_path[si] = true;
        dfs.walk(s, si, 0);
        dfs.on_path[si] = false;
        if dfs.truncation.truncated() {
            break;
        }
    }
    prospector_obs::add("search.dfs_expansions", dfs.expansions as u64);
    prospector_obs::add("search.paths_enumerated", dfs.out.len() as u64);
    match dfs.truncation {
        TruncationReason::None => {}
        TruncationReason::PathCap => prospector_obs::add("search.truncated.path_cap", 1),
        TruncationReason::ExpansionCap => prospector_obs::add("search.truncated.expansion_cap", 1),
    }
    // `m` could be 0 when a source widens straight into the target; in that
    // case the shortest *produced* path still reports 0.
    SearchOutcome { jungloids: dfs.out, shortest: Some(m), truncation: dfs.truncation }
}

struct Dfs<'a> {
    graph: &'a JungloidGraph,
    field: &'a DistanceField,
    target_idx: usize,
    bound: u32,
    config: &'a SearchConfig,
    on_path: Vec<bool>,
    elems: Vec<jungloid_apidef::ElemJungloid>,
    out: Vec<Jungloid>,
    expansions: usize,
    truncation: TruncationReason,
}

impl Dfs<'_> {
    fn walk(&mut self, source: TyId, at: usize, cost: u32) {
        if self.truncation.truncated() {
            return;
        }
        for edge in self.graph.out_edges(self.graph.node_at(at)) {
            self.expansions += 1;
            if self.expansions > self.config.max_expansions {
                self.truncation = TruncationReason::ExpansionCap;
                return;
            }
            let to_idx = self.graph.index_of(edge.to);
            if self.on_path[to_idx] {
                continue;
            }
            let step = u32::from(!edge.elem.is_widen());
            let new_cost = cost + step;
            let to_go = self.field.from(self.graph, edge.to);
            if to_go == u32::MAX || new_cost + to_go > self.bound {
                continue;
            }
            self.elems.push(edge.elem);
            if to_idx == self.target_idx {
                // Pure-widening paths contain no code ("you already have a
                // tout"); the engine reports those separately.
                if self.elems.iter().any(|e| !e.is_widen()) {
                    self.out.push(Jungloid { source, elems: self.elems.clone() });
                    if self.out.len() >= self.config.max_results {
                        self.truncation = TruncationReason::PathCap;
                        self.elems.pop();
                        return;
                    }
                }
            } else {
                self.on_path[to_idx] = true;
                self.walk(source, to_idx, new_cost);
                self.on_path[to_idx] = false;
                if self.truncation.truncated() {
                    self.elems.pop();
                    return;
                }
            }
            self.elems.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphConfig;
    use jungloid_apidef::{Api, ApiLoader};

    fn api() -> Api {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "t.api",
                r"
                package t;
                public class A { B toB(); C toC(); }
                public class B { C toC(); D toD(); }
                public class C { D toD(); }
                public class D {}
                public class Sub extends D {}
                public class Maker { static Sub makeSub(); }
                ",
            )
            .unwrap();
        loader.finish().unwrap()
    }

    fn ty(api: &Api, name: &str) -> TyId {
        api.types().resolve(name).unwrap()
    }

    fn run(graph: &JungloidGraph, from: &[TyId], to: TyId) -> SearchOutcome {
        let field = DistanceField::towards(graph, to);
        enumerate(graph, from, to, &field, &SearchConfig::default())
    }

    #[test]
    fn finds_shortest_and_m_plus_one() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let d = ty(&api, "t.D");
        let outcome = run(&g, &[a], d);
        assert_eq!(outcome.shortest, Some(2)); // a.toB().toD() or a.toC().toD()
        let lengths: Vec<u32> = outcome.jungloids.iter().map(Jungloid::steps).collect();
        assert!(lengths.iter().all(|&l| l <= 3));
        assert!(lengths.contains(&2));
        // The length-3 chain a.toB().toC().toD() is within m+1 and present.
        assert!(lengths.contains(&3));
        // Every produced path is well-typed.
        for j in &outcome.jungloids {
            j.validate(&api).unwrap();
        }
    }

    #[test]
    fn widening_is_free_and_reaches_supertype_targets() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let void = api.types().void();
        let d = ty(&api, "t.D");
        // Maker.makeSub(): void -> Sub, widen Sub -> D costs 0.
        let outcome = run(&g, &[void], d);
        assert_eq!(outcome.shortest, Some(1));
        assert!(outcome
            .jungloids
            .iter()
            .any(|j| j.steps() == 1 && j.concrete_output_ty(&api) == ty(&api, "t.Sub")));
    }

    #[test]
    fn unreachable_yields_empty() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let d = ty(&api, "t.D");
        let a = ty(&api, "t.A");
        let outcome = run(&g, &[d], a);
        assert!(outcome.jungloids.is_empty());
        assert_eq!(outcome.shortest, None);
    }

    #[test]
    fn multi_source_uses_global_minimum() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let c = ty(&api, "t.C");
        let d = ty(&api, "t.D");
        // From C the distance is 1; from A it is 2. Global m = 1, so paths
        // from A of length 2 (= m+1) still appear, length-3 ones do not.
        let outcome = run(&g, &[a, c], d);
        assert_eq!(outcome.shortest, Some(1));
        let from_a: Vec<u32> = outcome
            .jungloids
            .iter()
            .filter(|j| j.source == a)
            .map(Jungloid::steps)
            .collect();
        assert!(!from_a.is_empty());
        assert!(from_a.iter().all(|&l| l == 2));
    }

    #[test]
    fn paths_are_acyclic() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let d = ty(&api, "t.D");
        let outcome = run(&g, &[a], d);
        for j in &outcome.jungloids {
            let mut seen = vec![j.source];
            for e in &j.elems {
                let current = e.output_ty(&api);
                // Types may repeat only through distinct mined nodes; in a
                // pure signature graph they must not repeat at all.
                assert!(!seen.contains(&current), "cycle in {}", j.describe(&api));
                seen.push(current);
            }
        }
    }

    #[test]
    fn max_results_truncates() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let d = ty(&api, "t.D");
        let field = DistanceField::towards(&g, d);
        let cfg = SearchConfig { max_results: 1, ..SearchConfig::default() };
        let outcome = enumerate(&g, &[a], d, &field, &cfg);
        assert_eq!(outcome.jungloids.len(), 1);
        assert_eq!(outcome.truncation, TruncationReason::PathCap);
        assert!(outcome.truncation.truncated());

        let cfg = SearchConfig { max_expansions: 2, ..SearchConfig::default() };
        let outcome = enumerate(&g, &[a], d, &field, &cfg);
        assert_eq!(outcome.truncation, TruncationReason::ExpansionCap);
        assert_eq!(outcome.truncation.label(), "expansion_cap");
    }

    #[test]
    fn duplicate_sources_deduped() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let d = ty(&api, "t.D");
        let once = run(&g, &[a], d).jungloids.len();
        let twice = run(&g, &[a, a], d).jungloids.len();
        assert_eq!(once, twice);
    }

    #[test]
    fn mined_paths_are_searchable() {
        use jungloid_apidef::{ElemJungloid, InputSlot};
        let api = api();
        let mut g = JungloidGraph::from_api(&api, GraphConfig::default());
        let b = ty(&api, "t.B");
        let d = ty(&api, "t.D");
        let sub = ty(&api, "t.Sub");
        let to_d = api.lookup_instance_method(b, "toD", 0)[0];
        g.add_example(
            &api,
            &[
                ElemJungloid::Call { method: to_d, input: Some(InputSlot::Receiver) },
                ElemJungloid::Downcast { from: d, to: sub },
            ],
        )
        .unwrap();
        let outcome = run(&g, &[b], sub);
        assert_eq!(outcome.shortest, Some(2));
        assert!(outcome.jungloids.iter().any(Jungloid::contains_downcast));
        for j in &outcome.jungloids {
            j.validate(&api).unwrap();
        }
    }
}
