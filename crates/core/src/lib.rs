//! Prospector's core: jungloid synthesis from signatures and mined
//! examples.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Mandelin, Xu, Bodík, Kimelman — *Jungloid Mining: Helping to Navigate
//! the API Jungle*, PLDI 2005):
//!
//! * [`graph`] — the signature graph (§3.1) and the example-refined
//!   jungloid graph (§4.2, Figure 6);
//! * [`search`] — multi-source acyclic path enumeration within the
//!   `m + 1` window (§5);
//! * [`rank`] — the length-first ranking heuristic with package-crossing
//!   and output-generality tie-breaks (§3.2);
//! * [`generalize`] — trimming mined examples to distinguishing suffixes
//!   (§4.2, Figure 7);
//! * [`synth`] — rendering paths as insertable code with free variables
//!   (§2.2);
//! * [`engine`] — the query front end: explicit `(tin, tout)` queries and
//!   context-inferred content-assist queries (§5);
//! * [`persist`] — the serialized graph measured by the §5 performance
//!   experiment.
//!
//! # Quickstart
//!
//! ```
//! use jungloid_apidef::ApiLoader;
//! use prospector_core::Prospector;
//!
//! let mut loader = ApiLoader::with_prelude();
//! loader.add_source(
//!     "io.api",
//!     r#"
//!     package java.io;
//!     public class InputStream {}
//!     public class Reader {}
//!     public class InputStreamReader extends Reader {
//!         InputStreamReader(InputStream in);
//!     }
//!     public class BufferedReader extends Reader {
//!         BufferedReader(Reader in);
//!     }
//!     "#,
//! )?;
//! let api = loader.finish()?;
//! let tin = api.types().resolve("InputStream")?;
//! let tout = api.types().resolve("BufferedReader")?;
//!
//! let prospector = Prospector::new(api);
//! let result = prospector.query(tin, tout)?;
//! assert_eq!(
//!     result.suggestions[0].code,
//!     "new BufferedReader(new InputStreamReader(inputStream))"
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cache;
pub mod compose;
pub mod dot;
pub mod engine;
pub mod explain;
pub mod generalize;
pub mod graph;
pub mod heat;
pub mod path;
pub mod persist;
pub mod rank;
pub mod search;
pub mod slab;
pub mod synth;
pub mod viability;

pub use cache::{CacheOutcome, FlightLease, Lookup, ShardedLru, SingleflightCache};
pub use compose::{compose, ComposeConfig, Composition};
pub use engine::{BatchEntry, Prospector, QueryError, QueryResult, QueryStats, Suggestion};
pub use graph::{
    CsrAdjacency, Edge, ExampleError, GraphConfig, GraphStats, JungloidGraph, NodeId, SnapshotError,
};
pub use heat::{HeatEdge, HeatEntry, HeatSnapshot, WorkloadEntry, WorkloadSnapshot};
pub use persist::PersistError;
pub use path::Jungloid;
pub use rank::{RankKey, RankOptions};
pub use search::{
    DistanceField, SearchConfig, SearchOutcome, SearchScratch, TruncationReason,
};
pub use slab::{ElemSeq, Slab, SnapshotBuf};
pub use synth::{synthesize, synthesize_statements, NamePool, Snippet};
pub use viability::{Behavior, Outcome};
