//! Extended API pack: the classic downcast-heavy J2SE 1.4 corners.
//!
//! The paper's corpus was mined from real pre-generics Java, where these
//! APIs produced the era's most recognizable casts: `(ZipEntry)
//! entries.nextElement()`, `(Element) nodeList.item(0)`,
//! `(DefaultMutableTreeNode) path.getLastPathComponent()`. The pack is
//! loaded with `BuildOptions::extended` and drives the extended problem
//! set (`problems_ext`).

/// `java.util.zip` — archives iterate via legacy `Enumeration`.
pub const J2SE_ZIP: &str = r"
package java.util.zip;

public class ZipEntry {
    String getName();
    long getSize();
    boolean isDirectory();
}

public class ZipFile {
    ZipFile(String name);
    ZipFile(java.io.File file);
    java.util.Enumeration entries();
    java.io.InputStream getInputStream(ZipEntry entry);
    int size();
    void close();
}

public class ZipInputStream extends java.io.InputStream {
    ZipInputStream(java.io.InputStream in);
    ZipEntry getNextEntry();
}
";

/// `org.w3c.dom` + `javax.xml.parsers` — DOM traversal is cast central:
/// `NodeList.item` returns `Node`, and everything useful is a subtype.
pub const J2SE_DOM: &str = r"
package org.w3c.dom;

public interface Node {
    String getNodeName();
    NodeList getChildNodes();
    Node getFirstChild();
    Node getParentNode();
}

public interface Document extends Node {
    Element getDocumentElement();
    NodeList getElementsByTagName(String tagname);
    Element createElement(String tagName);
}

public interface Element extends Node {
    String getAttribute(String name);
    NodeList getElementsByTagName(String name);
}

public interface Text extends Node {
    String getData();
}

public interface Attr extends Node {
    String getValue();
}

public interface NodeList {
    Node item(int index);
    int getLength();
}

package javax.xml.parsers;

public class DocumentBuilderFactory {
    static DocumentBuilderFactory newInstance();
    DocumentBuilder newDocumentBuilder();
}

public class DocumentBuilder {
    org.w3c.dom.Document parse(java.io.File f);
    org.w3c.dom.Document parse(java.io.InputStream is);
    org.w3c.dom.Document parse(String uri);
}
";

/// `javax.swing` tree fragment — `TreePath.getLastPathComponent()`
/// returns `Object`; every Swing tutorial casts it.
pub const SWING_TREE: &str = r"
package javax.swing.tree;

public interface TreeNode {
    TreeNode getChildAt(int childIndex);
    int getChildCount();
}

public class DefaultMutableTreeNode implements TreeNode {
    DefaultMutableTreeNode(Object userObject);
    Object getUserObject();
    java.util.Enumeration children();
    void add(DefaultMutableTreeNode newChild);
}

public class TreePath {
    Object getLastPathComponent();
    int getPathCount();
}

public interface TreeModel {
    Object getRoot();
    int getChildCount(Object parent);
}

public class DefaultTreeModel implements TreeModel {
    DefaultTreeModel(TreeNode root);
}

package javax.swing;

public class JTree {
    JTree(javax.swing.tree.TreeModel newModel);
    javax.swing.tree.TreePath getSelectionPath();
    javax.swing.tree.TreeModel getModel();
}
";

/// `java.sql` — a pure-signature chain domain (no casts needed).
pub const J2SE_SQL: &str = r"
package java.sql;

public class DriverManager {
    static Connection getConnection(String url);
}

public interface Connection {
    Statement createStatement();
    PreparedStatement prepareStatement(String sql);
    void close();
}

public interface Statement {
    ResultSet executeQuery(String sql);
    void close();
}

public interface PreparedStatement extends Statement {
    ResultSet executeQuery();
}

public interface ResultSet {
    boolean next();
    String getString(String columnLabel);
    Object getObject(String columnLabel);
    void close();
}
";

/// All extended stubs as `(label, text)` pairs.
pub const EXTENDED_STUBS: [(&str, &str); 4] = [
    ("j2se_zip.api", J2SE_ZIP),
    ("j2se_dom.api", J2SE_DOM),
    ("swing_tree.api", SWING_TREE),
    ("j2se_sql.api", J2SE_SQL),
];
