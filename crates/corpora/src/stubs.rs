//! Hand-modeled `.api` stubs: the fragments of J2SE 1.4 and Eclipse 2.1
//! that the paper's worked examples, Table 1 queries, and user-study
//! problems exercise.
//!
//! Modeling rules (documented in DESIGN.md):
//!
//! * every class/method named by the paper is present with its real
//!   shape (declaring class, parameter/return types, staticness,
//!   `protected` where the paper's failure analysis depends on it);
//! * each class carries a *subset* of its real members — enough for the
//!   distractor structure the evaluation relies on, not the full API
//!   (the procedural jungle generator adds bulk distractor mass for the
//!   performance experiments);
//! * reflection (`Object.getClass`) is excluded, consistent with the
//!   paper's exclusion of reflective object creation from the static
//!   model (§4.1).

/// `java.io` — streams and readers (Table 1 rows 1, 2, 14).
pub const J2SE_IO: &str = r"
package java.io;

public class InputStream {
    int read();
    int available();
    void close();
}

public class File {
    File(String pathname);
    String getName();
    String getPath();
    boolean exists();
    long length();
}

public class FileInputStream extends InputStream {
    FileInputStream(String name);
    FileInputStream(File file);
    java.nio.channels.FileChannel getChannel();
}

public class Reader {
    int read();
    void close();
}

public class InputStreamReader extends Reader {
    InputStreamReader(InputStream in);
    InputStreamReader(InputStream in, String charsetName);
    String getEncoding();
}

public class FileReader extends InputStreamReader {
    FileReader(String fileName);
    FileReader(File file);
}

public class StringReader extends Reader {
    StringReader(String s);
}

public class BufferedReader extends Reader {
    BufferedReader(Reader in);
    BufferedReader(Reader in, int sz);
    String readLine();
}

public class LineNumberReader extends BufferedReader {
    LineNumberReader(Reader in);
    int getLineNumber();
}

public class RandomAccessFile {
    RandomAccessFile(String name, String mode);
    RandomAccessFile(File file, String mode);
    java.nio.channels.FileChannel getChannel();
    long length();
}
";

/// `java.nio` — memory-mapped I/O (Table 1 row 2).
pub const J2SE_NIO: &str = r"
package java.nio;

public class Buffer {
    int capacity();
    int position();
}

public class ByteBuffer extends Buffer {
    static ByteBuffer allocate(int capacity);
    byte get(int index);
}

public class MappedByteBuffer extends ByteBuffer {
    boolean isLoaded();
    MappedByteBuffer load();
}

package java.nio.channels;

public class MapMode {
    static MapMode READ_ONLY;
    static MapMode READ_WRITE;
}

public class FileChannel {
    MappedByteBuffer map(MapMode mode, long position, long size);
    long size();
    void close();
}
";

/// `java.util` — collections (Table 1 rows 7, 10).
pub const J2SE_UTIL: &str = r"
package java.util;

public interface Enumeration {
    boolean hasMoreElements();
    Object nextElement();
}

public interface Iterator {
    boolean hasNext();
    Object next();
    void remove();
}

public interface ListIterator extends Iterator {
    boolean hasPrevious();
    Object previous();
}

public interface Collection {
    Iterator iterator();
    int size();
    boolean isEmpty();
    Object[] toArray();
}

public interface List extends Collection {
    Object get(int index);
    ListIterator listIterator();
}

public interface Set extends Collection {
}

public interface Map {
    Collection values();
    Set keySet();
    Set entrySet();
    Object get(Object key);
    Object put(Object key, Object value);
    int size();
}

public class ArrayList implements List {
    ArrayList();
    ArrayList(Collection c);
}

public class HashMap implements Map {
    HashMap();
}

public class Vector implements List {
    Vector();
    Enumeration elements();
}

public class Collections {
    static ArrayList list(Enumeration e);
    static List unmodifiableList(List list);
    static Set unmodifiableSet(Set s);
}
";

/// `org.apache.commons.collections` — the Enumeration→Iterator wrapper
/// (Table 1 row 7's "expected, concise, efficient solution based on
/// reusing a wrapper class").
pub const COMMONS_COLLECTIONS: &str = r"
package org.apache.commons.collections;

public class IteratorUtils {
    static java.util.Iterator asIterator(java.util.Enumeration enumeration);
    static java.util.List toList(java.util.Iterator iterator);
}
";

/// `java.net` + `java.applet` — playing a sound at a URL (user-study
/// problem 2).
pub const J2SE_NET_APPLET: &str = r"
package java.net;

public class URL {
    URL(String spec);
    java.io.InputStream openStream();
    String getHost();
    String getFile();
}

package java.applet;

public interface AudioClip {
    void play();
    void loop();
    void stop();
}

public class Applet {
    static AudioClip newAudioClip(java.net.URL url);
    AudioClip getAudioClip(java.net.URL url);
    void showStatus(String msg);
}
";

/// `org.apache.lucene.demo.html` — the §3.2 ranking anecdote: a
/// same-length but package-crossing route to `BufferedReader`.
pub const LUCENE_DEMO: &str = r"
package org.apache.lucene.demo.html;

public class HTMLParser {
    HTMLParser(java.io.InputStream in);
    java.io.BufferedReader getReader();
    String getTitle();
}
";

/// `org.apache.tools.ant` — Figure 7's Project/Target/Task shapes.
pub const ANT: &str = r"
package org.apache.tools.ant;

public class Project {
    Project();
    java.util.Map getTargets();
    java.util.Map getTasks();
    String getName();
}

public class Target {
    String getName();
}

public class Task {
    String getTaskName();
}

public class ProjectHelper {
    static Project createProject(String buildFile);
}
";

/// `org.eclipse.core.resources` + `org.eclipse.core.runtime` — workspace
/// resources (intro example, Table 1 rows 17, 20).
pub const ECLIPSE_RESOURCES: &str = r"
package org.eclipse.core.runtime;

public interface IPath {
    String toOSString();
    boolean isAbsolute();
    int segmentCount();
}

public class Path implements IPath {
    Path(String fullPath);
}

package org.eclipse.core.resources;

public interface IResource {
    String getName();
    String getFileExtension();
    org.eclipse.core.runtime.IPath getFullPath();
    org.eclipse.core.runtime.IPath getLocation();
    boolean exists();
    int getType();
}

public interface IContainer extends IResource {
    IResource[] members();
    IResource findMember(String path);
    IFile getFile(org.eclipse.core.runtime.IPath path);
    IFolder getFolder(org.eclipse.core.runtime.IPath path);
}

public interface IFile extends IResource {
    void setContents(java.io.InputStream source, boolean force);
}

public interface IFolder extends IContainer {
}

public interface IProject extends IContainer {
    boolean isOpen();
}

public interface IWorkspaceRoot extends IContainer {
    IFile getFileForLocation(org.eclipse.core.runtime.IPath location);
    IContainer getContainerForLocation(org.eclipse.core.runtime.IPath location);
    IProject getProject(String name);
    IProject[] getProjects();
}

public interface IWorkspace {
    IWorkspaceRoot getRoot();
    void checkpoint(boolean build);
}

public class ResourcesPlugin {
    static IWorkspace getWorkspace();
}
";

/// `org.eclipse.jdt.core` + `dom` — the §1 parsing example and Figure 1.
pub const ECLIPSE_JDT: &str = r"
package org.eclipse.jdt.core;

public interface IJavaElement {
    org.eclipse.core.resources.IResource getResource();
    String getElementName();
    IJavaElement getParent();
}

public interface ICompilationUnit extends IJavaElement {
    IType[] getTypes();
}

public interface IClassFile extends IJavaElement {
}

public interface IType extends IJavaElement {
    String getFullyQualifiedName();
}

public class JavaCore {
    static ICompilationUnit createCompilationUnitFrom(org.eclipse.core.resources.IFile file);
    static IJavaElement create(org.eclipse.core.resources.IResource resource);
}

package org.eclipse.jdt.core.dom;

public class ASTNode {
    int getStartPosition();
    int getLength();
    ASTNode getParent();
}

public class CompilationUnit extends ASTNode {
    Object[] getProblems();
}

public class AST {
    static CompilationUnit parseCompilationUnit(org.eclipse.jdt.core.ICompilationUnit unit, boolean resolveBindings);
}
";

/// `org.eclipse.swt` — widgets, events, graphics (Table 1 rows 3, 6, 12).
pub const ECLIPSE_SWT: &str = r"
package org.eclipse.swt.graphics;

public class Image {
    boolean isDisposed();
    void dispose();
}

package org.eclipse.swt.widgets;

public class Widget {
    Display getDisplay();
    boolean isDisposed();
    void dispose();
}

public class Display {
    Shell getActiveShell();
    Shell[] getShells();
    static Display getCurrent();
    static Display getDefault();
}

public class Control extends Widget {
    Shell getShell();
    Composite getParent();
    boolean setFocus();
}

public class Composite extends Control {
    Control[] getChildren();
}

public class Canvas extends Composite {
}

public class Shell extends Canvas {
    void open();
    void close();
}

public class Item extends Widget {
    String getText();
    void setText(String string);
}

public class Table extends Composite {
    TableColumn getColumn(int index);
    TableColumn[] getColumns();
    int getItemCount();
}

public class TableColumn extends Item {
    TableColumn(Table parent, int style);
    void setWidth(int width);
}

package org.eclipse.swt.events;

public class TypedEvent {
    Widget widget;
    Display display;
}

public class KeyEvent extends TypedEvent {
    char character;
    int keyCode;
}
";

/// `org.eclipse.jface` — viewers, actions, image resources (Table 1 rows
/// 3, 8, 9, 11, 12, 15).
pub const ECLIPSE_JFACE: &str = r"
package org.eclipse.jface.viewers;

public interface ISelection {
    boolean isEmpty();
}

public interface IStructuredSelection extends ISelection {
    Object getFirstElement();
    java.util.List toList();
    int size();
}

public interface ISelectionProvider {
    ISelection getSelection();
}

public class SelectionChangedEvent {
    SelectionChangedEvent(ISelectionProvider source, ISelection selection);
    ISelection getSelection();
    ISelectionProvider getSelectionProvider();
}

public class Viewer implements ISelectionProvider {
    org.eclipse.swt.widgets.Control getControl();
    Object getInput();
    ISelection getSelection();
}

public class ContentViewer extends Viewer {
}

public class StructuredViewer extends ContentViewer {
}

public class TableViewer extends StructuredViewer {
    TableViewer(org.eclipse.swt.widgets.Composite parent);
    org.eclipse.swt.widgets.Table getTable();
}

package org.eclipse.jface.action;

public interface IMenuManager {
    void update(boolean force);
    void removeAll();
}

public class MenuManager implements IMenuManager {
    MenuManager();
}

public interface IToolBarManager {
    void update(boolean force);
}

public interface IStatusLineManager {
    void setMessage(String message);
}

package org.eclipse.jface.resource;

public class ImageRegistry {
    ImageRegistry();
    org.eclipse.swt.graphics.Image get(String key);
    ImageDescriptor getDescriptor(String key);
    void put(String key, ImageDescriptor descriptor);
}

public class ImageDescriptor {
    org.eclipse.swt.graphics.Image createImage();
}

public class JFaceResources {
    static ImageRegistry getImageRegistry();
}
";

/// `org.eclipse.ui` — workbench, parts, sites, editors (Table 1 rows 4,
/// 11, 13, 15, 16, 18; user-study problems 3, 4).
pub const ECLIPSE_UI: &str = r"
package org.eclipse.ui;

public interface ISharedImages {
    org.eclipse.swt.graphics.Image getImage(String symbolicName);
    org.eclipse.jface.resource.ImageDescriptor getImageDescriptor(String symbolicName);
}

public interface IWorkbench {
    IWorkbenchWindow getActiveWorkbenchWindow();
    IWorkbenchWindow[] getWorkbenchWindows();
    ISharedImages getSharedImages();
}

public interface IWorkbenchWindow {
    IWorkbenchPage getActivePage();
    IWorkbenchPage[] getPages();
    IWorkbench getWorkbench();
    org.eclipse.swt.widgets.Shell getShell();
    ISelectionService getSelectionService();
}

public interface ISelectionService {
    org.eclipse.jface.viewers.ISelection getSelection();
}

public interface IWorkbenchPage {
    IEditorPart getActiveEditor();
    IWorkbenchPart getActivePart();
    IViewPart findView(String viewId);
    IViewPart showView(String viewId);
    IEditorPart[] getEditors();
    org.eclipse.jface.viewers.ISelection getSelection();
    IWorkbenchWindow getWorkbenchWindow();
}

public interface IWorkbenchPart {
    IWorkbenchPartSite getSite();
    String getTitle();
    Object getAdapter(Class adapter);
}

public interface IWorkbenchPartSite {
    IWorkbenchPage getPage();
    IWorkbenchWindow getWorkbenchWindow();
    org.eclipse.jface.viewers.ISelectionProvider getSelectionProvider();
    org.eclipse.swt.widgets.Shell getShell();
    String getId();
}

public interface IEditorInput {
    String getName();
    boolean exists();
}

public interface IFileEditorInput extends IEditorInput {
    org.eclipse.core.resources.IFile getFile();
}

public interface IEditorSite extends IWorkbenchPartSite {
    IActionBars getActionBars();
}

public interface IViewSite extends IWorkbenchPartSite {
    IActionBars getActionBars();
}

public interface IActionBars {
    org.eclipse.jface.action.IMenuManager getMenuManager();
    org.eclipse.jface.action.IToolBarManager getToolBarManager();
    org.eclipse.jface.action.IStatusLineManager getStatusLineManager();
}

public interface IEditorPart extends IWorkbenchPart {
    IEditorInput getEditorInput();
    IEditorSite getEditorSite();
}

public interface IViewPart extends IWorkbenchPart {
    IViewSite getViewSite();
}

public class PlatformUI {
    static IWorkbench getWorkbench();
}

package org.eclipse.ui.texteditor;

public interface IDocumentProvider {
    org.eclipse.jface.text.IDocument getDocument(Object element);
}

public interface ITextEditor extends org.eclipse.ui.IEditorPart {
    IDocumentProvider getDocumentProvider();
    void selectAndReveal(int start, int length);
}

public class DocumentProviderRegistry {
    static DocumentProviderRegistry getDefault();
    IDocumentProvider getDocumentProvider(org.eclipse.ui.IEditorInput input);
}

package org.eclipse.jface.text;

public interface IDocument {
    String get();
    int getLength();
    void set(String text);
}
";

/// `org.eclipse.debug.ui` + JDT debug — Figure 2/4's watch-expression
/// chain.
pub const ECLIPSE_DEBUG: &str = r"
package org.eclipse.debug.ui;

public interface IDebugView {
    org.eclipse.jface.viewers.Viewer getViewer();
}

package org.eclipse.jdt.debug.ui;

public class JavaInspectExpression {
    String getExpressionText();
}

public class JDIDebugUIPlugin {
    static org.eclipse.ui.IWorkbenchPage getActivePage();
}
";

/// `org.eclipse.gef` + `org.eclipse.draw2d` — graphical editors (Table 1
/// rows 5, 19). `getLayer` is `protected`, which is exactly why the
/// paper's tool cannot answer `(AbstractGraphicalEditPart,
/// ConnectionLayer)` (§7).
pub const ECLIPSE_GEF: &str = r"
package org.eclipse.draw2d;

public interface IFigure {
    void repaint();
}

public class Figure implements IFigure {
    Figure();
}

public class Layer extends Figure {
}

public class ConnectionLayer extends Layer {
    void setConnectionRouter(Object router);
}

public class FigureCanvas extends org.eclipse.swt.widgets.Canvas {
    void setContents(IFigure figure);
    IFigure getContents();
}

package org.eclipse.gef;

public interface EditPartViewer {
    org.eclipse.swt.widgets.Control getControl();
}

public class LayerConstants {
    static Object CONNECTION_LAYER;
    static Object PRIMARY_LAYER;
}

package org.eclipse.gef.editparts;

public class AbstractGraphicalEditPart {
    org.eclipse.draw2d.IFigure getFigure();
    protected org.eclipse.draw2d.IFigure getLayer(Object key);
    org.eclipse.gef.EditPartViewer getViewer();
}

package org.eclipse.gef.ui.parts;

public class ScrollingGraphicalViewer implements org.eclipse.gef.EditPartViewer {
    ScrollingGraphicalViewer();
    org.eclipse.swt.widgets.Control getControl();
}
";

/// All stub sources, in load order, as `(label, text)` pairs.
pub const ALL_STUBS: [(&str, &str); 12] = [
    ("j2se_io.api", J2SE_IO),
    ("j2se_nio.api", J2SE_NIO),
    ("j2se_util.api", J2SE_UTIL),
    ("j2se_net_applet.api", J2SE_NET_APPLET),
    ("commons_collections.api", COMMONS_COLLECTIONS),
    ("lucene_demo.api", LUCENE_DEMO),
    ("ant.api", ANT),
    ("eclipse_resources.api", ECLIPSE_RESOURCES),
    ("eclipse_jdt.api", ECLIPSE_JDT),
    ("eclipse_swt.api", ECLIPSE_SWT),
    ("eclipse_jface.api", ECLIPSE_JFACE),
    ("eclipse_ui.api", ECLIPSE_UI),
];

/// Stubs loaded only with the debug/GEF corpora.
pub const EXTRA_STUBS: [(&str, &str); 2] =
    [("eclipse_debug.api", ECLIPSE_DEBUG), ("eclipse_gef.api", ECLIPSE_GEF)];
