//! Extended problem set — our own additional evaluation over the
//! classic downcast-heavy J2SE corners (`stubs_ext`), in the style of
//! Table 1. These go beyond the paper's 20 problems; they validate that
//! the pipeline generalizes past the hand-tuned Eclipse corpus.

use crate::problems::Problem;

/// Sixteen extended problems. `paper_rank`/`paper_time_s` hold our own
/// *expected* rank (these are not from the paper).
#[must_use]
pub fn extended() -> Vec<Problem> {
    vec![
        Problem {
            id: 101,
            label: "Get the first entry of a zip archive",
            source: "extended",
            tin: "ZipFile",
            tout: "ZipEntry",
            paper_time_s: 0.0,
            paper_rank: Some(1),
            desired: &["(ZipEntry)", ".entries().nextElement()"],
        },
        Problem {
            id: 102,
            label: "Open a stream for a zip entry",
            source: "extended",
            tin: "ZipFile",
            tout: "InputStream",
            paper_time_s: 0.0,
            paper_rank: Some(1),
            desired: &[".getInputStream("],
        },
        Problem {
            id: 103,
            label: "Parse an XML document from a URI",
            source: "extended",
            tin: "String",
            tout: "Document",
            paper_time_s: 0.0,
            paper_rank: Some(1),
            // From a lone String the factory chain is a *follow-up* query
            // (§2.2): the direct answer parses via a free DocumentBuilder.
            desired: &["documentBuilder.parse("],
        },
        Problem {
            id: 104,
            label: "Parse an XML document from a file",
            source: "extended",
            tin: "File",
            tout: "Document",
            paper_time_s: 0.0,
            paper_rank: Some(1),
            desired: &["documentBuilder.parse(file)"],
        },
        Problem {
            id: 105,
            label: "Get elements by tag name",
            source: "extended",
            tin: "Document",
            tout: "NodeList",
            paper_time_s: 0.0,
            paper_rank: Some(1),
            desired: &["getElementsByTagName("],
        },
        Problem {
            id: 106,
            label: "Get an element out of a node list",
            source: "extended",
            tin: "NodeList",
            tout: "Element",
            paper_time_s: 0.0,
            paper_rank: Some(1),
            desired: &["(Element)", ".item("],
        },
        Problem {
            id: 107,
            label: "Read the text body of an element",
            source: "extended",
            tin: "Element",
            tout: "Text",
            paper_time_s: 0.0,
            paper_rank: Some(1),
            desired: &["(Text)", "getFirstChild()"],
        },
        Problem {
            id: 108,
            label: "Get the selection path of a tree",
            source: "extended",
            tin: "JTree",
            tout: "TreePath",
            paper_time_s: 0.0,
            paper_rank: Some(1),
            desired: &["getSelectionPath()"],
        },
        Problem {
            id: 109,
            label: "Get the root node of a tree model",
            source: "extended",
            tin: "TreeModel",
            tout: "DefaultMutableTreeNode",
            paper_time_s: 0.0,
            // Rank 3: `new DefaultMutableTreeNode(treeModel)` and
            // `new DefaultMutableTreeNode(treeModel.getRoot())` — wrapping
            // via the Object-typed constructor — rank above. Exactly the
            // §4.3 imprecision; see tests/param_mining.rs for the fix.
            paper_rank: Some(3),
            desired: &["(DefaultMutableTreeNode)", ".getRoot()"],
        },
        Problem {
            id: 113,
            label: "Get the selected tree node from a path",
            source: "extended",
            tin: "TreePath",
            tout: "DefaultMutableTreeNode",
            paper_time_s: 0.0,
            // Rank 3 behind the same §4.3 constructor junk as E109.
            paper_rank: Some(3),
            desired: &["(DefaultMutableTreeNode)", "getLastPathComponent()"],
        },
        Problem {
            id: 110,
            label: "Run a SQL query",
            source: "extended",
            tin: "String",
            tout: "ResultSet",
            paper_time_s: 0.0,
            // The String is ambiguous (SQL text vs connection URL — the
            // paper's §3.2 String ambiguity); the SQL reading wins and the
            // free Statement receiver is bound by a follow-up query.
            paper_rank: Some(1),
            desired: &[".executeQuery(string)"],
        },
        Problem {
            id: 115,
            label: "Open a named file for printing",
            source: "extended",
            tin: "String",
            tout: "PrintWriter",
            paper_time_s: 0.0,
            paper_rank: Some(1),
            desired: &["new PrintWriter(new File"],
        },
        Problem {
            id: 116,
            label: "Iterate over the keys of a Properties table",
            source: "extended",
            tin: "Properties",
            tout: "Iterator",
            paper_time_s: 0.0,
            paper_rank: Some(1),
            desired: &["IteratorUtils.asIterator("],
        },
        Problem {
            id: 114,
            label: "Connect to a database URL",
            source: "extended",
            tin: "String",
            tout: "Connection",
            paper_time_s: 0.0,
            paper_rank: Some(1),
            desired: &["DriverManager.getConnection("],
        },
        Problem {
            id: 111,
            label: "Read a zip archive from a file",
            source: "extended",
            tin: "File",
            tout: "ZipFile",
            paper_time_s: 0.0,
            paper_rank: Some(1),
            desired: &["new ZipFile(file)"],
        },
        Problem {
            id: 112,
            label: "Wrap a stream for zip reading",
            source: "extended",
            tin: "InputStream",
            tout: "ZipEntry",
            paper_time_s: 0.0,
            paper_rank: Some(1),
            desired: &["new ZipInputStream(", ".getNextEntry()"],
        },
    ]
}
