//! The paper's evaluation problems: Table 1's twenty query-processing
//! problems and the four user-study problems (§6).

/// One Table 1 row.
#[derive(Clone, Copy, Debug)]
pub struct Problem {
    /// Row number (1-based, paper order).
    pub id: u32,
    /// The paper's description of the programming problem.
    pub label: &'static str,
    /// Where the paper got the problem (Tester / Author / Eclipse FAQs /
    /// Almanac).
    pub source: &'static str,
    /// Query input type (simple name).
    pub tin: &'static str,
    /// Query output type (simple name).
    pub tout: &'static str,
    /// PROSPECTOR's reported query time in seconds (Table 1).
    pub paper_time_s: f64,
    /// The paper's rank of the desired solution; `None` = "No" (not
    /// found).
    pub paper_rank: Option<u32>,
    /// Substrings that must all appear in a suggestion's code for it to
    /// count as the desired solution.
    pub desired: &'static [&'static str],
}

/// The twenty problems of Table 1, in the paper's order.
#[must_use]
pub fn table1() -> Vec<Problem> {
    vec![
        Problem {
            id: 1,
            label: "Read lines from an input stream",
            source: "Tester",
            tin: "InputStream",
            tout: "BufferedReader",
            paper_time_s: 0.32,
            paper_rank: Some(1),
            desired: &["new BufferedReader(new InputStreamReader(", "))"],
        },
        Problem {
            id: 2,
            label: "Open a named file for memory-mapped I/O",
            source: "Almanac",
            tin: "String",
            tout: "MappedByteBuffer",
            paper_time_s: 0.17,
            paper_rank: Some(1),
            desired: &["new FileInputStream(", ".getChannel().map("],
        },
        Problem {
            id: 3,
            label: "Get table widget from an Eclipse view",
            source: "Eclipse FAQs",
            tin: "TableViewer",
            tout: "Table",
            paper_time_s: 0.04,
            paper_rank: Some(1),
            desired: &[".getTable()"],
        },
        Problem {
            id: 4,
            label: "Get the active editor",
            source: "Eclipse FAQs",
            tin: "IWorkbench",
            tout: "IEditorPart",
            paper_time_s: 0.16,
            paper_rank: Some(1),
            desired: &["getActiveWorkbenchWindow().getActivePage().getActiveEditor()"],
        },
        Problem {
            id: 5,
            label: "Retrieve canvas from scrolling viewer",
            source: "Author",
            tin: "ScrollingGraphicalViewer",
            tout: "FigureCanvas",
            paper_time_s: 0.08,
            paper_rank: Some(1),
            desired: &["(FigureCanvas)", ".getControl()"],
        },
        Problem {
            id: 6,
            label: "Get window for MessageBox",
            source: "Author",
            tin: "KeyEvent",
            tout: "Shell",
            paper_time_s: 0.09,
            paper_rank: Some(1),
            desired: &["getActiveShell()"],
        },
        Problem {
            id: 7,
            label: "Convert legacy class",
            source: "Author",
            tin: "Enumeration",
            tout: "Iterator",
            paper_time_s: 0.06,
            paper_rank: Some(1),
            desired: &["IteratorUtils.asIterator("],
        },
        Problem {
            id: 8,
            label: "Get selection from event",
            source: "Author",
            tin: "SelectionChangedEvent",
            tout: "ISelection",
            paper_time_s: 0.02,
            paper_rank: Some(1),
            desired: &[".getSelection()"],
        },
        Problem {
            id: 9,
            label: "Get image handle for lazy image loading",
            source: "Tester",
            tin: "ImageRegistry",
            tout: "ImageDescriptor",
            paper_time_s: 0.08,
            paper_rank: Some(1),
            desired: &[".getDescriptor("],
        },
        Problem {
            id: 10,
            label: "Iterate over map values",
            source: "Tester",
            tin: "Map",
            tout: "Iterator",
            paper_time_s: 0.17,
            paper_rank: Some(1),
            desired: &[".values().iterator()"],
        },
        Problem {
            id: 11,
            label: "Add menu bars to a view",
            source: "Eclipse FAQs",
            tin: "IViewPart",
            tout: "MenuManager",
            paper_time_s: 0.21,
            paper_rank: Some(1),
            desired: &["getViewSite().getActionBars().getMenuManager()"],
        },
        Problem {
            id: 12,
            label: "Set captions on table columns",
            source: "Author",
            tin: "TableViewer",
            tout: "TableColumn",
            paper_time_s: 0.37,
            paper_rank: Some(2),
            desired: &["new TableColumn("],
        },
        Problem {
            id: 13,
            label: "Track selection changes in another widget",
            source: "Eclipse FAQs",
            tin: "IEditorSite",
            tout: "ISelectionService",
            paper_time_s: 0.01,
            paper_rank: Some(2),
            desired: &["getWorkbenchWindow().getSelectionService()"],
        },
        Problem {
            id: 14,
            label: "Read lines from a file",
            source: "Almanac",
            tin: "String",
            tout: "BufferedReader",
            paper_time_s: 0.17,
            paper_rank: Some(3),
            desired: &["new BufferedReader(new FileReader("],
        },
        Problem {
            id: 15,
            label: "Find out what object is selected",
            source: "Eclipse FAQs",
            tin: "IWorkbenchPage",
            tout: "IStructuredSelection",
            paper_time_s: 0.15,
            paper_rank: Some(3),
            desired: &["(IStructuredSelection)", ".getSelection()"],
        },
        Problem {
            id: 16,
            label: "Manipulate document of visual editor",
            source: "Eclipse FAQs",
            tin: "IWorkbenchPage",
            tout: "IDocumentProvider",
            paper_time_s: 1.07,
            paper_rank: Some(3),
            desired: &["documentProviderRegistry.getDocumentProvider("],
        },
        Problem {
            id: 17,
            label: "Convert file handle to file name",
            source: "Author",
            tin: "IFile",
            tout: "String",
            paper_time_s: 0.11,
            paper_rank: Some(4),
            desired: &[".toOSString()"],
        },
        Problem {
            id: 18,
            label: "Get an Eclipse view by name",
            source: "Eclipse FAQs",
            tin: "IWorkbenchWindow",
            tout: "IViewPart",
            paper_time_s: 0.61,
            paper_rank: Some(4),
            desired: &[".findView("],
        },
        Problem {
            id: 19,
            label: "Set graph edge routing algorithm",
            source: "Author",
            tin: "AbstractGraphicalEditPart",
            tout: "ConnectionLayer",
            paper_time_s: 0.08,
            paper_rank: None,
            desired: &[".getLayer("],
        },
        Problem {
            id: 20,
            label: "Retrieve file from workspace",
            source: "Author",
            tin: "IWorkspace",
            tout: "IFile",
            paper_time_s: 0.59,
            paper_rank: None,
            desired: &["getRoot().getFile("],
        },
    ]
}

/// One user-study problem (§6). The study tool condition answers these
/// with content assist over the listed visible variables.
#[derive(Clone, Copy, Debug)]
pub struct StudyProblem {
    /// Problem number (1-based, paper order).
    pub id: u32,
    /// Short label.
    pub label: &'static str,
    /// Visible variables at the cursor: `(name, simple type name)`.
    pub visible: &'static [(&'static str, &'static str)],
    /// The requested output type.
    pub tout: &'static str,
    /// Substrings identifying the desired (best) solution.
    pub desired: &'static [&'static str],
    /// Substrings identifying an acceptable but inefficient reuse
    /// solution (the paper's "copying the elements into a list" class of
    /// answers), if one exists.
    pub inefficient: &'static [&'static str],
    /// When the inefficient solution answers a *different* output type
    /// (problem 4's accepted `getSharedImages().getImage(...)` returns an
    /// `Image`, not the requested `ImageRegistry`), the type it targets.
    pub inefficient_tout: Option<&'static str>,
    /// Relative difficulty weight used by the study simulator (problem 2
    /// is "the hardest", problem 1 "the easiest", per §7).
    pub difficulty: f64,
    /// Probability that a *baseline* (no-tool) reuse answer carries the
    /// subtle bug §7 describes (4 of 7 manual solutions to problem 3
    /// threw when the highlighted window was not an editor).
    pub subtle_bug: f64,
}

/// The four user-study problems (§6).
#[must_use]
pub fn user_study() -> Vec<StudyProblem> {
    vec![
        StudyProblem {
            id: 1,
            label: "Convert an Enumeration to an Iterator",
            visible: &[("en", "Enumeration")],
            tout: "Iterator",
            desired: &["IteratorUtils.asIterator("],
            inefficient: &["Collections.list(", ".iterator()"],
            inefficient_tout: None,
            difficulty: 1.0,
            subtle_bug: 0.12,
        },
        StudyProblem {
            id: 2,
            label: "Play a sound file at a URL",
            visible: &[("url", "String")],
            tout: "AudioClip",
            desired: &["Applet.newAudioClip(new URL("],
            inefficient: &[],
            inefficient_tout: None,
            difficulty: 2.2,
            subtle_bug: 0.0,
        },
        StudyProblem {
            id: 3,
            label: "Get the active editor from the workbench",
            visible: &[("workbench", "IWorkbench")],
            tout: "IEditorPart",
            desired: &["getActiveWorkbenchWindow().getActivePage().getActiveEditor()"],
            inefficient: &[],
            inefficient_tout: None,
            difficulty: 1.6,
            subtle_bug: 0.57,
        },
        StudyProblem {
            id: 4,
            label: "Get the shared image registry",
            visible: &[("workbench", "IWorkbench")],
            tout: "ImageRegistry",
            desired: &["JFaceResources.getImageRegistry()"],
            inefficient: &["getSharedImages().getImage("],
            inefficient_tout: Some("Image"),
            difficulty: 1.3,
            subtle_bug: 0.0,
        },
    ]
}
