//! Runners that regenerate the paper's evaluation artifacts from a live
//! engine — Table 1 here; Figure 8 lives in `prospector-study`.

use std::time::{Duration, Instant};

use prospector_core::Prospector;

use crate::problems::{table1, Problem};

/// How many suggestions the user is assumed to read before giving up.
///
/// The paper reports that users found every answered query "after looking
/// at fewer than 5 code snippets" and marks two queries `No`; we treat a
/// desired solution ranked past this cutoff as not found.
pub const READ_CUTOFF: usize = 10;

/// One measured Table 1 row.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// The problem definition (including the paper's numbers).
    pub problem: Problem,
    /// Query wall-clock time.
    pub time: Duration,
    /// Measured rank of the desired solution (1-based), if within
    /// [`READ_CUTOFF`].
    pub rank: Option<usize>,
    /// Rank even beyond the cutoff, for diagnostics.
    pub raw_rank: Option<usize>,
    /// Shortest solution length `m`.
    pub shortest: Option<u32>,
    /// Number of ranked candidates produced.
    pub candidates: usize,
    /// Top suggestion's code (diagnostics).
    pub top_code: Option<String>,
}

impl Table1Row {
    /// Whether the measured outcome matches the paper's found/not-found
    /// verdict.
    #[must_use]
    pub fn agrees_on_found(&self) -> bool {
        self.rank.is_some() == self.problem.paper_rank.is_some()
    }
}

/// Runs one problem.
///
/// # Panics
///
/// Panics if the problem's type names do not resolve in `p`'s API (a
/// corpus bug).
#[must_use]
pub fn run_problem(p: &Prospector, problem: &Problem) -> Table1Row {
    let tin = p.api().types().resolve(problem.tin).expect("tin resolves");
    let tout = p.api().types().resolve(problem.tout).expect("tout resolves");
    let start = Instant::now();
    let result = p.query(tin, tout).expect("reference-type query");
    let time = start.elapsed();
    let raw_rank = result
        .rank_where(|s| problem.desired.iter().all(|needle| s.code.contains(needle)));
    Table1Row {
        problem: *problem,
        time,
        rank: raw_rank.filter(|&r| r <= READ_CUTOFF),
        raw_rank,
        shortest: result.shortest,
        candidates: result.suggestions.len(),
        top_code: result.suggestions.first().map(|s| s.code.clone()),
    }
}

/// Runs all twenty problems.
#[must_use]
pub fn run_table1(p: &Prospector) -> Vec<Table1Row> {
    table1().iter().map(|problem| run_problem(p, problem)).collect()
}

/// Formats rows like the paper's Table 1 (plus the paper's own numbers
/// for side-by-side comparison).
#[must_use]
pub fn format_table1(rows: &[Table1Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<42} {:<28} {:<22} {:>8} {:>5}   {:>9} {:>6}",
        "Programming problem", "tin", "tout", "Time(ms)", "Rank", "paper(s)", "paper"
    );
    let _ = writeln!(out, "{}", "-".repeat(130));
    let mut found = 0;
    for row in rows {
        let rank = row.rank.map_or_else(|| "No".to_owned(), |r| r.to_string());
        let paper_rank =
            row.problem.paper_rank.map_or_else(|| "No".to_owned(), |r| r.to_string());
        if row.rank.is_some() {
            found += 1;
        }
        let _ = writeln!(
            out,
            "{:<42} {:<28} {:<22} {:>8.2} {:>5}   {:>9.2} {:>6}",
            row.problem.label,
            row.problem.tin,
            row.problem.tout,
            row.time.as_secs_f64() * 1000.0,
            rank,
            row.problem.paper_time_s,
            paper_rank,
        );
    }
    let avg_ms: f64 =
        rows.iter().map(|r| r.time.as_secs_f64() * 1000.0).sum::<f64>() / rows.len() as f64;
    let _ = writeln!(out, "{}", "-".repeat(130));
    let _ = writeln!(
        out,
        "found {found}/{} (paper: 18/20); average time {avg_ms:.2} ms (paper: 230 ms)",
        rows.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_default;

    #[test]
    fn format_includes_every_row_and_summary() {
        let engine = build_default();
        let rows = run_table1(&engine);
        let text = format_table1(&rows);
        for row in &rows {
            assert!(text.contains(row.problem.label), "missing row: {}", row.problem.label);
        }
        assert!(text.contains("found "));
        assert!(text.contains("average time"));
        // Paper columns present.
        assert!(text.contains("paper"));
    }

    #[test]
    fn run_problem_reports_raw_rank_beyond_cutoff() {
        let engine = build_default();
        // A problem whose desired matcher never matches: rank is None but
        // candidates are still counted.
        let mut problem = crate::problems::table1()[0];
        problem.desired = &["no-such-snippet-xyz"];
        let row = run_problem(&engine, &problem);
        assert_eq!(row.rank, None);
        assert_eq!(row.raw_rank, None);
        assert!(row.candidates > 0);
        assert!(!row.agrees_on_found());
    }
}
