//! The MiniJava client-code corpus Prospector mines.
//!
//! Each constant is one "production" source file. The corpus plays the
//! role of the paper's sample client programs: it contains the downcast
//! idioms (Figure 4's watch-expression chain, adapter lookups,
//! selection narrowing, `IActionBars`→`MenuManager`, GEF layers, the ant
//! Project/Target shapes of Figure 7) that the signature graph alone
//! cannot express.

/// Figure 4 (§4.2): the watch-expression chain from Eclipse's Java
/// debugger, verbatim modulo MiniJava syntax.
pub const FIGURE4: &str = r#"
package corpus.debug;

class WatchExpressionContext {
    protected Object getObjectContext() {
        IWorkbenchPage page = JDIDebugUIPlugin.getActivePage();
        IWorkbenchPart activePart = page.getActivePart();
        IDebugView view = (IDebugView) activePart.getAdapter(IDebugView.class);
        ISelection s = view.getViewer().getSelection();
        IStructuredSelection sel = (IStructuredSelection) s;
        Object selection = sel.getFirstElement();
        JavaInspectExpression var = (JavaInspectExpression) selection;
        return var;
    }
}
"#;

/// Selection narrowing idioms (Table 1 rows 8, 15; Figure 2's cast).
pub const SELECTIONS: &str = r#"
package corpus.handlers;

class SelectionHandlers {
    IStructuredSelection currentSelection(IWorkbenchPage page) {
        ISelection s = page.getSelection();
        return (IStructuredSelection) s;
    }

    IFile selectedFile(IStructuredSelection sel) {
        Object first = sel.getFirstElement();
        return (IFile) first;
    }

    IResource selectedResource(SelectionChangedEvent event) {
        IStructuredSelection sel = (IStructuredSelection) event.getSelection();
        return (IResource) sel.getFirstElement();
    }

    IStructuredSelection viewerSelection(Viewer viewer) {
        return (IStructuredSelection) viewer.getSelection();
    }
}
"#;

/// Editor and document-provider idioms (Table 1 rows 16, 18).
pub const EDITORS: &str = r#"
package corpus.editors;

class EditorHelpers {
    ITextEditor activeTextEditor(IWorkbenchPage page) {
        IEditorPart editor = page.getActiveEditor();
        return (ITextEditor) editor;
    }

    ITextEditor partAsTextEditor(IWorkbenchPage page) {
        IWorkbenchPart part = page.getActivePart();
        return (ITextEditor) part;
    }

    IViewPart activeView(IWorkbenchPage page) {
        IWorkbenchPart part = page.getActivePart();
        return (IViewPart) part;
    }

    IDocument currentDocument(IWorkbenchPage page) {
        ITextEditor editor = (ITextEditor) page.getActiveEditor();
        IDocumentProvider provider = editor.getDocumentProvider();
        return provider.getDocument(editor.getEditorInput());
    }
}
"#;

/// Menu-manager narrowing (Table 1 row 11).
pub const MENUS: &str = r#"
package corpus.views;

class ViewMenus {
    MenuManager viewMenu(IViewPart view) {
        IActionBars bars = view.getViewSite().getActionBars();
        IMenuManager mm = bars.getMenuManager();
        return (MenuManager) mm;
    }

    MenuManager editorMenu(IEditorPart editor) {
        IActionBars bars = editor.getEditorSite().getActionBars();
        return (MenuManager) bars.getMenuManager();
    }
}
"#;

/// Workspace-resource idioms (Table 1 rows 17, 20; intro example's
/// neighborhood).
pub const RESOURCES: &str = r#"
package corpus.resources;

class ResourceAccess {
    IFile fileByName(IWorkspace workspace, String name) {
        IResource member = workspace.getRoot().findMember(name);
        return (IFile) member;
    }

    IFile fileFromInput(IEditorPart editor) {
        IFileEditorInput input = (IFileEditorInput) editor.getEditorInput();
        return input.getFile();
    }

    ICompilationUnit unitFor(IFile file) {
        IJavaElement element = JavaCore.create(file);
        return (ICompilationUnit) element;
    }
}
"#;

/// GEF layer and canvas idioms (Table 1 rows 5, 19). `getLayer` is a
/// `protected` member of `AbstractGraphicalEditPart`: the corpus may call
/// it (subclasses), but the synthesizer may not suggest it to arbitrary
/// client code — reproducing the paper's `ConnectionLayer` failure.
pub const GEF: &str = r#"
package corpus.gef;

class DiagramEditPart extends AbstractGraphicalEditPart {
    void routeConnections() {
        ConnectionLayer layer = (ConnectionLayer) getLayer(LayerConstants.CONNECTION_LAYER);
        layer.setConnectionRouter(null);
    }
}

class OverlayEditPart extends AbstractGraphicalEditPart {
    Layer primaryLayer() {
        return (Layer) getLayer(LayerConstants.PRIMARY_LAYER);
    }
}

class CanvasAccess {
    FigureCanvas canvasOf(ScrollingGraphicalViewer viewer) {
        return (FigureCanvas) viewer.getControl();
    }
}
"#;

/// Figure 7's ant shapes: two chains sharing `Map.get` but diverging one
/// call earlier, ending in different casts.
pub const ANT_CORPUS: &str = r#"
package corpus.ant;

class BuildInspector {
    Target mainTarget(String buildFile) {
        Project project = ProjectHelper.createProject(buildFile);
        Object t = project.getTargets().get("main");
        return (Target) t;
    }

    Task firstTask(Project project) {
        Object t = project.getTasks().get("compile");
        return (Task) t;
    }
}
"#;

/// Guarded, loopy client code: realistic production shape (null checks,
/// retries) exercising the slicer's flow-insensitivity — both branches of
/// every `if` contribute definitions, exactly like the paper's
/// "flow-insensitive slice".
pub const GUARDED: &str = r#"
package corpus.guarded;

class GuardedSelection {
    IStructuredSelection robustSelection(IWorkbenchPage page) {
        ISelection s = page.getSelection();
        if (s == null) {
            s = page.getSelection();
        }
        while (s.isEmpty()) {
            s = page.getSelection();
        }
        return (IStructuredSelection) s;
    }

    void openEditorFile(IWorkbenchPage page) {
        IEditorPart editor = page.getActiveEditor();
        if (editor != null) {
            IEditorInput input = editor.getEditorInput();
            if (input != null) {
                IFileEditorInput fileInput = (IFileEditorInput) input;
                process(fileInput.getFile());
            }
        }
    }

    void process(IFile file) {
        if (file.exists() && file.getFileExtension() != null) {
            file.toString();
        }
    }
}
"#;

/// All corpus sources as `(label, text)` pairs.
pub const ALL_CORPUS: [(&str, &str); 8] = [
    ("figure4.mj", FIGURE4),
    ("selections.mj", SELECTIONS),
    ("editors.mj", EDITORS),
    ("menus.mj", MENUS),
    ("resources.mj", RESOURCES),
    ("gef.mj", GEF),
    ("ant.mj", ANT_CORPUS),
    ("guarded.mj", GUARDED),
];
