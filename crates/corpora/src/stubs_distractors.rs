//! Distractor mass: realistic neighboring API surface that the paper's
//! tool also faced. None of these members are needed by any problem's
//! desired solution; they exist so ranking works against a plausible
//! jungle rather than a minimal happy path. `tests/table1.rs` pins the
//! ranks, so any accidental interference is caught.

/// `java.lang` utilities.
pub const J2SE_LANG_EXTRA: &str = r"
package java.lang;

public class StringBuffer {
    StringBuffer();
    StringBuffer(String str);
    StringBuffer append(String str);
    int length();
}

public class System {
    static long currentTimeMillis();
    static String getProperty(String key);
}
";

/// `java.util` legacy collections and helpers.
pub const J2SE_UTIL_EXTRA: &str = r"
package java.util;

public class Hashtable implements Map {
    Hashtable();
    Enumeration keys();
    Enumeration elements();
}

public class Properties extends Hashtable {
    Properties();
    String getProperty(String key);
    void load(java.io.InputStream inStream);
}

public class Stack extends Vector {
    Stack();
    Object push(Object item);
    Object pop();
    Object peek();
}

public class LinkedList implements List {
    LinkedList();
    LinkedList(Collection c);
    Object getFirst();
    Object getLast();
}

public class StringTokenizer {
    StringTokenizer(String str);
    StringTokenizer(String str, String delim);
    boolean hasMoreTokens();
    String nextToken();
    int countTokens();
}

public class Arrays {
    static List asList(Object[] a);
}
";

/// `java.io` output side.
pub const J2SE_IO_EXTRA: &str = r"
package java.io;

public class OutputStream {
    void flush();
    void close();
}

public class FileOutputStream extends OutputStream {
    FileOutputStream(String name);
    FileOutputStream(File file);
}

public class Writer {
    void flush();
    void close();
}

public class OutputStreamWriter extends Writer {
    OutputStreamWriter(OutputStream out);
    String getEncoding();
}

public class FileWriter extends OutputStreamWriter {
    FileWriter(String fileName);
    FileWriter(File file);
}

public class BufferedWriter extends Writer {
    BufferedWriter(Writer out);
    void newLine();
}

public class PrintWriter extends Writer {
    PrintWriter(Writer out);
    PrintWriter(OutputStream out);
    void println(String x);
}

public class StringWriter extends Writer {
    StringWriter();
    StringBuffer getBuffer();
}

public class DataInputStream extends InputStream {
    DataInputStream(InputStream in);
}
";

/// SWT widgets and JFace dialogs beyond the evaluation's needs.
pub const ECLIPSE_UI_EXTRA: &str = r"
package org.eclipse.swt.widgets;

public class Button extends Control {
    Button(Composite parent, int style);
    String getText();
    void setText(String string);
}

public class Label extends Control {
    Label(Composite parent, int style);
    String getText();
    void setText(String string);
}

public class Menu extends Widget {
    Menu(Shell parent);
    MenuItem getDefaultItem();
}

public class MenuItem extends Item {
    MenuItem(Menu parent, int style);
    Menu getMenu();
}

package org.eclipse.jface.dialogs;

public class Dialog {
    protected Dialog(org.eclipse.swt.widgets.Shell parentShell);
    int open();
    protected org.eclipse.swt.widgets.Shell getShell();
}

public class MessageDialog extends Dialog {
    static boolean openConfirm(org.eclipse.swt.widgets.Shell parent, String title, String message);
    static void openInformation(org.eclipse.swt.widgets.Shell parent, String title, String message);
}

package org.eclipse.ui;

public interface IPerspectiveDescriptor {
    String getId();
    String getLabel();
}
";

/// All distractor stubs as `(label, text)` pairs.
pub const DISTRACTOR_STUBS: [(&str, &str); 4] = [
    ("j2se_lang_extra.api", J2SE_LANG_EXTRA),
    ("j2se_util_extra.api", J2SE_UTIL_EXTRA),
    ("j2se_io_extra.api", J2SE_IO_EXTRA),
    ("eclipse_ui_extra.api", ECLIPSE_UI_EXTRA),
];
