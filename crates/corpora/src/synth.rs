//! The million-scale synthetic jungle: power-law bulk plus planted
//! ground-truth paths.
//!
//! [`jungle`](crate::jungle) grows paper-scale distractor mass (~3k
//! classes). This module targets the *scaling* story instead: graphs of
//! 10^4–10^6 types whose out-degree follows a power law (like real API
//! reference graphs — a few hub types with huge surface, a long tail of
//! leaves), with **planted paths** whose unique shortest jungloid is
//! known by construction. That gives the scale harness a ground truth:
//! replay the planted queries at any graph size and check precision@k
//! against the chain the generator buried.
//!
//! Planted-path uniqueness argument: every hop class `Plant{k}Step{j}`
//! is returned by exactly one method — the hop `plant{k}hop{j}` on its
//! predecessor. Bulk methods only ever return bulk classes, and decoy
//! methods on the chain lead *into* the bulk, never back. Widening
//! reaches `Object`, but nothing leads from `Object` (or any bulk
//! class) to a planted class, so the hop chain is the only path from a
//! chain's head to its tail — and therefore the shortest.

use jungloid_apidef::{Api, MethodDef, Visibility};
use jungloid_typesys::TyId;
use prospector_obs::SmallRng;

/// Shape of the synthetic jungle. Defaults follow the CLI's
/// `prospector synth` defaults.
#[derive(Clone, Copy, Debug)]
pub struct SynthSpec {
    /// RNG seed; generation is deterministic in it.
    pub seed: u64,
    /// Bulk classes to generate (the `--types` scale knob; the planted
    /// chains add `planted × (plant_len + 1)` more on top).
    pub types: usize,
    /// Power-law exponent for out-degree (`P(d) ∝ d^-alpha`); real API
    /// graphs sit around 2–3.
    pub alpha: f64,
    /// Hard clamp on one class's generated out-degree.
    pub max_out_degree: usize,
    /// Number of planted ground-truth chains.
    pub planted: usize,
    /// Hops per planted chain (the unique shortest path's length).
    pub plant_len: usize,
    /// Decoy methods per chain class, leading off into the bulk — the
    /// search must not be able to cheat by following the only edge.
    pub decoys_per_hop: usize,
    /// Packages the bulk classes are spread over.
    pub packages: usize,
}

impl Default for SynthSpec {
    fn default() -> SynthSpec {
        SynthSpec {
            seed: 0x5eed_1ab5,
            types: 10_000,
            alpha: 2.3,
            max_out_degree: 48,
            planted: 24,
            plant_len: 4,
            decoys_per_hop: 2,
            packages: 64,
        }
    }
}

/// One planted ground-truth chain: querying `tin → tout` has the hop
/// methods (in order) as its unique shortest jungloid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlantedPath {
    /// Fully generated head class name (`Plant{k}Step0`).
    pub tin: String,
    /// Tail class name (`Plant{k}Step{plant_len}`).
    pub tout: String,
    /// The hop method names, in path order.
    pub hops: Vec<String>,
}

/// What [`grow_synth`] generated.
#[derive(Clone, Debug, Default)]
pub struct SynthReport {
    /// Classes added (bulk + chain).
    pub classes: usize,
    /// Methods added.
    pub methods: usize,
    /// The planted ground truth.
    pub planted: Vec<PlantedPath>,
}

/// Samples a Pareto-tail out-degree: `d = ⌊u^(-1/(alpha-1))⌋`, clamped
/// to `[1, max]`. With alpha ≈ 2.3 most classes get 1–3 methods and a
/// few get dozens — the hub-and-leaves shape of real API graphs.
fn power_law_degree(rng: &mut SmallRng, alpha: f64, max: usize) -> usize {
    // gen_range over a wide usize span → uniform (0, 1]; avoid exactly 0.
    const SPAN: usize = 1 << 31;
    let u = (rng.gen_range(0..SPAN) as f64 + 1.0) / SPAN as f64;
    let d = u.powf(-1.0 / (alpha - 1.0)).floor() as usize;
    d.clamp(1, max.max(1))
}

/// Grows `api` by `spec`: bulk classes with power-law out-degree, then
/// the planted chains. Deterministic in `spec.seed`.
///
/// # Panics
///
/// Panics only if generated names collide with existing declarations
/// (they are namespaced under `synth.*`, so they never should).
pub fn grow_synth(api: &mut Api, spec: &SynthSpec) -> SynthReport {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut report = SynthReport::default();

    // Bulk classes first, so methods can return any of them.
    let mut bulk: Vec<TyId> = Vec::with_capacity(spec.types);
    for i in 0..spec.types {
        let pkg = format!("synth.p{}", i % spec.packages.max(1));
        let ty = api.declare_class(&pkg, &format!("Syn{i}")).expect("unique synth class name");
        bulk.push(ty);
        report.classes += 1;
    }

    // Power-law out-degree: zero-parameter instance methods, each an
    // edge `Syn{i} → Syn{target}` in the jungloid graph.
    for (i, &ty) in bulk.iter().enumerate() {
        let degree = power_law_degree(&mut rng, spec.alpha, spec.max_out_degree);
        for m in 0..degree {
            let target = bulk[rng.gen_range(0..bulk.len())];
            let def = MethodDef {
                name: format!("syn{i}m{m}"),
                declaring: ty,
                params: Vec::new(),
                param_names: Vec::new(),
                ret: target,
                visibility: Visibility::Public,
                is_static: false,
                is_constructor: false,
            };
            if api.add_method(def).is_ok() {
                report.methods += 1;
            }
        }
    }

    // Planted chains: Step0 --hop0--> Step1 --hop1--> ... --> StepN,
    // plus decoys from every step into the bulk.
    for k in 0..spec.planted {
        let steps: Vec<TyId> = (0..=spec.plant_len)
            .map(|j| {
                report.classes += 1;
                api.declare_class("synth.planted", &format!("Plant{k}Step{j}"))
                    .expect("unique planted class name")
            })
            .collect();
        let mut hops = Vec::with_capacity(spec.plant_len);
        for j in 0..spec.plant_len {
            let hop = format!("plant{k}hop{j}");
            let def = MethodDef {
                name: hop.clone(),
                declaring: steps[j],
                params: Vec::new(),
                param_names: Vec::new(),
                ret: steps[j + 1],
                visibility: Visibility::Public,
                is_static: false,
                is_constructor: false,
            };
            if api.add_method(def).is_ok() {
                report.methods += 1;
            }
            hops.push(hop);
        }
        // Decoys lead off the chain into the bulk (never back: bulk
        // methods cannot return planted classes), so the search has
        // real branching to resist at every step.
        if !bulk.is_empty() {
            for (j, &step) in steps.iter().enumerate() {
                for d in 0..spec.decoys_per_hop {
                    let target = bulk[rng.gen_range(0..bulk.len())];
                    let def = MethodDef {
                        name: format!("plant{k}decoy{j}x{d}"),
                        declaring: step,
                        params: Vec::new(),
                        param_names: Vec::new(),
                        ret: target,
                        visibility: Visibility::Public,
                        is_static: false,
                        is_constructor: false,
                    };
                    if api.add_method(def).is_ok() {
                        report.methods += 1;
                    }
                }
            }
        }
        report.planted.push(PlantedPath {
            tin: format!("Plant{k}Step0"),
            tout: format!("Plant{k}Step{}", spec.plant_len),
            hops,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use jungloid_apidef::ApiLoader;
    use prospector_core::Prospector;

    fn small_spec() -> SynthSpec {
        SynthSpec { types: 500, planted: 4, plant_len: 3, ..SynthSpec::default() }
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = ApiLoader::with_prelude().finish().unwrap();
        let mut b = ApiLoader::with_prelude().finish().unwrap();
        let ra = grow_synth(&mut a, &small_spec());
        let rb = grow_synth(&mut b, &small_spec());
        assert_eq!(ra.classes, rb.classes);
        assert_eq!(ra.methods, rb.methods);
        assert_eq!(ra.planted, rb.planted);
        assert_eq!(a.method_count(), b.method_count());
    }

    #[test]
    fn scale_tracks_the_types_knob() {
        let mut api = ApiLoader::with_prelude().finish().unwrap();
        let spec = small_spec();
        let report = grow_synth(&mut api, &spec);
        assert_eq!(report.classes, spec.types + spec.planted * (spec.plant_len + 1));
        // Power law with alpha 2.3: at least one method per class, and
        // nowhere near the max-degree ceiling on average.
        assert!(report.methods >= spec.types);
        assert!(report.methods <= spec.types * spec.max_out_degree);
    }

    #[test]
    fn planted_paths_are_found_exactly() {
        let mut api = ApiLoader::with_prelude().finish().unwrap();
        let spec = small_spec();
        let report = grow_synth(&mut api, &spec);
        let queries: Vec<(jungloid_typesys::TyId, jungloid_typesys::TyId)> = report
            .planted
            .iter()
            .map(|p| {
                (
                    api.types().resolve(&p.tin).unwrap(),
                    api.types().resolve(&p.tout).unwrap(),
                )
            })
            .collect();
        let engine = Prospector::new(api);
        for (planted, &(tin, tout)) in report.planted.iter().zip(&queries) {
            let result = engine.query(tin, tout).expect("planted query answers");
            assert_eq!(
                result.shortest,
                Some(spec.plant_len as u32),
                "planted chain is the shortest path"
            );
            let top = &result.suggestions.first().expect("has a suggestion").code;
            for hop in &planted.hops {
                assert!(top.contains(hop), "top suggestion {top:?} uses hop {hop:?}");
            }
        }
    }
}
