//! Procedural client-corpus generators for mining-scale experiments.
//!
//! Two generators:
//!
//! * [`explosion_case`] builds the pathological shape the paper reports
//!   ("the backward data-flow path branches when it reaches a variable
//!   that is assigned in multiple places … extraction [would] take many
//!   hours and generate several gigabytes of example jungloids"): a
//!   ladder of local variables, each with `branching` flow-insensitive
//!   definitions consuming the previous rung, ending in a downcast — so
//!   the walk has `branching ^ depth` distinct paths. The per-cast cap
//!   (§4.2) is what keeps extraction bounded; the `mining_scaling` bench
//!   measures exactly that.
//! * [`generate_clients`] renders many ordinary client files by taking
//!   random well-typed walks through a signature graph — bulk realistic
//!   input for throughput measurements.

use jungloid_apidef::Api;
use jungloid_minijava::ast::{Class, Expr, Method, Stmt, TypeName, Unit};
use jungloid_typesys::TyId;
use prospector_core::synth::{synthesize_statements_pooled, ty_to_type_name, NamePool};
use prospector_core::{GraphConfig, Jungloid, JungloidGraph, NodeId};
use prospector_obs::SmallRng;

/// The shape of an [`explosion_case`].
#[derive(Clone, Copy, Debug)]
pub struct ExplosionSpec {
    /// Ladder depth (number of intermediate variables).
    pub depth: usize,
    /// Definitions per variable; the walk has `branching ^ depth` paths.
    pub branching: usize,
}

/// Builds the explosion API + client.
///
/// The API is a ladder `Rung0 → Rung1 → … → Rung<depth>` where each rung
/// exposes `branching` distinct methods to the next, plus a subtype
/// `Leaf` of the final rung for the terminal downcast. The client method
/// assigns every rung variable `branching` times (flow-insensitively) and
/// ends with `(Leaf) x<depth>`.
///
/// # Panics
///
/// Panics only on internal modeling errors (unique generated names).
#[must_use]
pub fn explosion_case(spec: &ExplosionSpec) -> (Api, Unit) {
    let mut api = jungloid_apidef::ApiLoader::with_prelude().finish().expect("prelude");
    for level in 0..=spec.depth {
        api.declare_class("ladder", &format!("Rung{level}")).expect("unique");
    }
    let leaf = api.declare_class("ladder", "Leaf").expect("unique");
    let last = api.types().resolve(&format!("Rung{}", spec.depth)).expect("declared");
    api.types_mut().set_superclass(leaf, last).expect("leaf extends last rung");
    for level in 0..spec.depth {
        let declaring = api.types().resolve(&format!("Rung{level}")).expect("declared");
        let ret = api.types().resolve(&format!("Rung{}", level + 1)).expect("declared");
        for b in 0..spec.branching {
            // `branching` distinct step methods: Rung{level} -> Rung{level+1}.
            api.add_method(jungloid_apidef::MethodDef {
                name: format!("step{b}"),
                declaring,
                params: Vec::new(),
                param_names: Vec::new(),
                ret,
                visibility: jungloid_apidef::Visibility::Public,
                is_static: false,
                is_constructor: false,
            })
            .expect("unique method");
        }
    }

    // Client: Rung1 x1 = input.step0(); x1 = input.step1(); … ;
    //         Rung2 x2 = x1.step0(); … ; return (Leaf) xD;
    let mut body = Vec::new();
    for level in 1..=spec.depth {
        let ty = TypeName::simple(&format!("Rung{level}"));
        let prev = if level == 1 { "input".to_owned() } else { format!("x{}", level - 1) };
        for b in 0..spec.branching {
            let call = Expr::Call {
                recv: Some(Box::new(Expr::var(&prev))),
                name: format!("step{b}"),
                args: Vec::new(),
            };
            if b == 0 {
                body.push(Stmt::Local {
                    ty: ty.clone(),
                    name: format!("x{level}"),
                    init: Some(call),
                });
            } else {
                body.push(Stmt::Assign { name: format!("x{level}"), value: call });
            }
        }
    }
    body.push(Stmt::Return(Some(Expr::Cast {
        ty: TypeName::simple("Leaf"),
        expr: Box::new(Expr::var(&format!("x{}", spec.depth))),
    })));
    let unit = Unit {
        file: "explosion.mj".to_owned(),
        package: Some("corpus.explosion".to_owned()),
        classes: vec![Class {
            name: "Exploder".to_owned(),
            extends: None,
            implements: Vec::new(),
            methods: vec![Method {
                mods: Vec::new(),
                ret: Some(TypeName::simple("Leaf")),
                name: "narrow".to_owned(),
                params: vec![(TypeName::simple("Rung0"), "input".to_owned())],
                body,
            }],
        }],
    };
    (api, unit)
}

/// Bulk-corpus generation options.
#[derive(Clone, Copy, Debug)]
pub struct ClientGenSpec {
    /// RNG seed.
    pub seed: u64,
    /// Number of client files.
    pub files: usize,
    /// Methods per file.
    pub methods_per_file: usize,
    /// Maximum walk length per method.
    pub max_chain: usize,
    /// Probability a method's result is downcast to a subtype (when one
    /// exists).
    pub cast_prob: f64,
}

impl Default for ClientGenSpec {
    fn default() -> Self {
        ClientGenSpec { seed: 7, files: 40, methods_per_file: 6, max_chain: 4, cast_prob: 0.6 }
    }
}

/// Renders `spec.files` synthetic client files of random well-typed
/// chains over `api`, suitable for lowering and mining.
#[must_use]
pub fn generate_clients(api: &Api, spec: &ClientGenSpec) -> Vec<Unit> {
    let graph = JungloidGraph::from_api(api, GraphConfig::default());
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let starts: Vec<TyId> = api
        .types()
        .decls()
        .map(|d| d.id)
        .filter(|&t| graph.out_edges(NodeId::Ty(t)).iter().any(|e| !e.elem.is_widen()))
        .collect();
    let mut units = Vec::new();
    for f in 0..spec.files {
        let mut methods = Vec::new();
        for m in 0..spec.methods_per_file {
            if let Some(method) = random_method(api, &graph, &starts, spec, &mut rng, m) {
                methods.push(method);
            }
        }
        if methods.is_empty() {
            continue;
        }
        units.push(Unit {
            file: format!("gen{f}.mj"),
            package: Some(format!("corpus.generated.g{f}")),
            classes: vec![Class {
                name: format!("GenClient{f}"),
                extends: None,
                implements: Vec::new(),
                methods,
            }],
        });
    }
    units
}

fn random_method(
    api: &Api,
    graph: &JungloidGraph,
    starts: &[TyId],
    spec: &ClientGenSpec,
    rng: &mut SmallRng,
    index: usize,
) -> Option<Method> {
    let start = starts[rng.gen_range(0..starts.len())];
    let mut at = NodeId::Ty(start);
    let mut steps = Vec::new();
    for _ in 0..rng.gen_range(1..=spec.max_chain) {
        let edges = graph.out_edges(at);
        if edges.is_empty() {
            break;
        }
        let e = edges[rng.gen_range(0..edges.len())];
        steps.push(e.elem);
        at = e.to;
    }
    while steps.last().is_some_and(jungloid_apidef::ElemJungloid::is_widen) {
        steps.pop();
    }
    if steps.iter().filter(|e| !e.is_widen()).count() == 0 {
        return None;
    }
    let out_ty = steps.last().expect("non-empty").output_ty(api);
    if !matches!(api.types().ty(out_ty), jungloid_typesys::Ty::Decl) {
        return None;
    }
    // Optionally end in a downcast.
    let mut ret_ty = out_ty;
    if rng.gen_f64() < spec.cast_prob {
        let subs: Vec<TyId> = api
            .types()
            .strict_subtypes(out_ty)
            .into_iter()
            .filter(|&s| matches!(api.types().ty(s), jungloid_typesys::Ty::Decl))
            .collect();
        if !subs.is_empty() {
            let target = subs[rng.gen_range(0..subs.len())];
            steps.push(jungloid_apidef::ElemJungloid::Downcast { from: out_ty, to: target });
            ret_ty = target;
        }
    }
    let jungloid = Jungloid::new(api, steps[0].input_ty(api), steps).ok()?;
    if jungloid.source == api.types().void() {
        return None;
    }
    let mut pool = NamePool::new();
    pool.reserve("input");
    let (mut body, _) = synthesize_statements_pooled(api, &jungloid, Some("input"), &mut pool);
    let result = body.iter().rev().find_map(|s| match s {
        Stmt::Local { name, init: Some(_), .. } => Some(name.clone()),
        _ => None,
    })?;
    body.push(Stmt::Return(Some(Expr::var(&result))));
    Some(Method {
        mods: Vec::new(),
        ret: Some(ty_to_type_name(api, ret_ty)),
        name: format!("chain{index}"),
        params: vec![(ty_to_type_name(api, jungloid.source), "input".to_owned())],
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jungloid_dataflow::{LoweredCorpus, Miner, MinerConfig};

    #[test]
    fn explosion_path_count_is_exponential() {
        let spec = ExplosionSpec { depth: 5, branching: 3 };
        let (mut api, unit) = explosion_case(&spec);
        let corpus = LoweredCorpus::lower(&mut api, &[unit]).unwrap();
        assert_eq!(corpus.cast_count(), 1);
        // With generous caps, extraction finds all 3^5 = 243 paths.
        let mut miner = Miner::new(&api, &corpus);
        miner.config = MinerConfig {
            max_examples_per_cast: 100_000,
            max_steps: 64,
            max_expansions: 10_000_000,
            parallel: false,
        };
        let report = miner.mine();
        assert_eq!(report.examples.len(), 3usize.pow(5));
        assert_eq!(report.capped_casts, 0);
    }

    #[test]
    fn cap_bounds_the_explosion() {
        // 6^6 = 46,656 paths; the paper-style cap keeps 64.
        let spec = ExplosionSpec { depth: 6, branching: 6 };
        let (mut api, unit) = explosion_case(&spec);
        let corpus = LoweredCorpus::lower(&mut api, &[unit]).unwrap();
        let mut miner = Miner::new(&api, &corpus);
        miner.config.parallel = false;
        let report = miner.mine();
        assert_eq!(report.examples.len(), miner.config.max_examples_per_cast);
        assert_eq!(report.capped_casts, 1);
    }

    #[test]
    fn generated_clients_lower_and_mine() {
        let api = crate::eclipse_api().unwrap();
        let units = generate_clients(&api, &ClientGenSpec { files: 10, ..ClientGenSpec::default() });
        assert!(!units.is_empty());
        let mut mining_api = crate::eclipse_api().unwrap();
        let corpus = LoweredCorpus::lower(&mut mining_api, &units)
            .unwrap_or_else(|e| panic!("generated corpus must lower: {e}"));
        let mut miner = Miner::new(&mining_api, &corpus);
        miner.config.parallel = false;
        let report = miner.mine();
        // Most files contain at least one cast.
        assert!(report.cast_sites > 0);
        for e in &report.examples {
            assert!(e.last().unwrap().is_downcast());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let api = crate::eclipse_api().unwrap();
        let spec = ClientGenSpec { files: 5, ..ClientGenSpec::default() };
        let a = generate_clients(&api, &spec);
        let b = generate_clients(&api, &spec);
        assert_eq!(a, b);
    }
}
