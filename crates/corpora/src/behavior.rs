//! The run-time behavior model of the modeled APIs (§4.1's "environment").
//!
//! This encodes what the modeled Eclipse/J2SE members *really* produce at
//! run time — the facts that live outside the static type system and that
//! the corpus knows implicitly. It is used only to *score* synthesis
//! output (viability rates); the synthesizer never sees it.

use jungloid_apidef::Api;
use jungloid_typesys::TyId;
use prospector_core::viability::Behavior;

/// Builds the behavior model for the hand-modeled APIs (and, when the
/// extended pack is loaded, its members too).
///
/// # Panics
///
/// Panics if a modeled type is missing (a corpus bug).
#[must_use]
pub fn eclipse_behavior(api: &Api) -> Behavior {
    let mut behavior = Behavior::new();
    let ty = |name: &str| -> TyId {
        api.types().resolve(name).unwrap_or_else(|e| panic!("behavior model: {e}"))
    };
    let mut method = |class: &str, name: &str, dynamics: &[&str]| {
        let c = ty(class);
        let ds: Vec<TyId> = dynamics.iter().map(|d| ty(d)).collect();
        for arity in 0..3 {
            for m in api
                .lookup_instance_method(c, name, arity)
                .into_iter()
                .chain(api.lookup_static_method(c, name, arity))
            {
                behavior.method_returns(m, &ds);
            }
        }
    };

    // Selections: a workbench selection is structured when anything is
    // selected, and the selected element is one of the model objects the
    // corpus casts to.
    method("Viewer", "getSelection", &["IStructuredSelection"]);
    method("IWorkbenchPage", "getSelection", &["IStructuredSelection"]);
    method("SelectionChangedEvent", "getSelection", &["IStructuredSelection"]);
    method("ISelectionProvider", "getSelection", &["IStructuredSelection"]);
    method(
        "IStructuredSelection",
        "getFirstElement",
        &["JavaInspectExpression", "IFile", "IResource"],
    );
    method("IWorkbenchPart", "getAdapter", &["IDebugView"]);

    // Parts and editors.
    method("IWorkbenchPage", "getActivePart", &["ITextEditor", "IViewPart"]);
    method("IWorkbenchPage", "getActiveEditor", &["ITextEditor"]);
    method("IEditorPart", "getEditorInput", &["IFileEditorInput"]);

    // Widgets.
    method("ScrollingGraphicalViewer", "getControl", &["FigureCanvas"]);
    method("IActionBars", "getMenuManager", &["MenuManager"]);

    // Resources and Java model.
    method("IContainer", "findMember", &["IFile", "IFolder", "IProject"]);
    method("JavaCore", "create", &["ICompilationUnit", "IClassFile"]);

    // GEF layers.
    method("AbstractGraphicalEditPart", "getLayer", &["ConnectionLayer", "Layer"]);

    // Figure 7's ant maps.
    if api.types().resolve("Project").is_ok() {
        method("Map", "get", &["Target", "Task"]);
    }

    // Extended pack, when loaded.
    if api.types().resolve("ZipFile").is_ok() {
        method("Enumeration", "nextElement", &["ZipEntry"]);
        method("NodeList", "item", &["Element", "Text", "Attr"]);
        method("org.w3c.dom.Node", "getFirstChild", &["Element", "Text", "Attr"]);
        method("TreePath", "getLastPathComponent", &["DefaultMutableTreeNode"]);
        method("TreeModel", "getRoot", &["DefaultMutableTreeNode"]);
    }
    behavior
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build, BuildOptions};
    use prospector_core::viability::{execute, viability_rate};

    #[test]
    fn every_mined_table1_answer_is_viable() {
        let built = build(&BuildOptions::default()).unwrap();
        let engine = built.prospector;
        let api = engine.api();
        let behavior = eclipse_behavior(api);
        for problem in crate::problems::table1() {
            let tin = api.types().resolve(problem.tin).unwrap();
            let tout = api.types().resolve(problem.tout).unwrap();
            let result = engine.query(tin, tout).unwrap();
            for s in result.suggestions.iter().take(5) {
                if s.jungloid.contains_downcast() {
                    let outcome = execute(api, &behavior, &s.jungloid);
                    assert!(
                        outcome.is_viable(),
                        "P{}: mined suggestion `{}` is inviable: {:?}",
                        problem.id,
                        s.code,
                        outcome
                    );
                }
            }
        }
    }

    #[test]
    fn naive_downcast_suggestions_are_mostly_inviable() {
        use prospector_core::Prospector;
        let signature = build(&BuildOptions { mining: false, ..BuildOptions::default() })
            .unwrap()
            .prospector;
        let naive_graph = signature.graph().with_naive_downcasts(signature.api());
        let api = crate::eclipse_api().unwrap();
        let naive = Prospector::from_parts(api, naive_graph);
        let api = naive.api();
        let behavior = eclipse_behavior(api);

        let debug_view = api.types().resolve("IDebugView").unwrap();
        let expr = api.types().resolve("JavaInspectExpression").unwrap();
        let result = naive.query(debug_view, expr).unwrap();
        assert!(!result.suggestions.is_empty());
        let jungloids: Vec<_> = result.suggestions.iter().map(|s| &s.jungloid).collect();
        let rate = viability_rate(api, &behavior, &jungloids);
        assert!(
            rate < 0.5,
            "naive downcasts should be mostly inviable, got {rate} over {} suggestions",
            jungloids.len()
        );
    }

    #[test]
    fn behavior_builds_for_extended_pack() {
        let built = build(&BuildOptions { extended: true, ..BuildOptions::default() }).unwrap();
        let api = built.prospector.api();
        let behavior = eclipse_behavior(api);
        // The zip idiom is viable under it.
        let zip = api.types().resolve("ZipFile").unwrap();
        let entry = api.types().resolve("ZipEntry").unwrap();
        let result = built.prospector.query(zip, entry).unwrap();
        let top = &result.suggestions[0];
        assert!(execute(api, &behavior, &top.jungloid).is_viable());
    }
}
