//! The API-jungle generator: seeded, procedural distractor mass.
//!
//! The paper's graph covers J2SE (≈21,000 methods) plus Eclipse; our
//! hand-modeled fragments cover the classes the evaluation names. For the
//! §5 performance experiment — graph size, load time, query-latency
//! distribution — the graph must have paper-scale bulk, so this module
//! grows an [`Api`] with procedurally generated packages, class
//! hierarchies, fields, and methods. Generation is deterministic in the
//! seed.

use jungloid_apidef::{Api, FieldDef, MethodDef, Visibility};
use jungloid_typesys::{Prim, Ty, TyId};
use prospector_obs::SmallRng;

/// Shape of the generated jungle.
#[derive(Clone, Copy, Debug)]
pub struct JungleSpec {
    /// RNG seed.
    pub seed: u64,
    /// Number of generated packages.
    pub packages: usize,
    /// Number of generated classes.
    pub classes: usize,
    /// Average methods per class.
    pub avg_methods: usize,
    /// Probability that a class extends an earlier generated class.
    pub subclass_prob: f64,
    /// Probability that a method parameter/return uses a pre-existing
    /// (hand-modeled) type instead of a generated one, creating cross
    /// links into the modeled API.
    pub cross_link_prob: f64,
    /// Probability that a class gets a field per method slot.
    pub field_prob: f64,
}

impl Default for JungleSpec {
    /// Paper-scale default: ≈3,000 classes / ≈21,000 methods.
    fn default() -> Self {
        JungleSpec {
            seed: 0x1a2b_3c4d,
            packages: 60,
            classes: 3_000,
            avg_methods: 7,
            subclass_prob: 0.45,
            cross_link_prob: 0.04,
            field_prob: 0.08,
        }
    }
}

/// What was generated.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JungleStats {
    /// Classes added.
    pub classes: usize,
    /// Methods (incl. constructors) added.
    pub methods: usize,
    /// Fields added.
    pub fields: usize,
}

/// Grows `api` by `spec`.
///
/// # Panics
///
/// Panics only if the generated names collide with existing declarations
/// (they are namespaced under `jungle.p<N>`, so they never should).
pub fn grow(api: &mut Api, spec: &JungleSpec) -> JungleStats {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let existing: Vec<TyId> = api
        .types()
        .ids()
        .filter(|&t| api.types().kind(t).is_some())
        .collect();
    let mut generated: Vec<TyId> = Vec::with_capacity(spec.classes);
    let mut stats = JungleStats::default();

    for c in 0..spec.classes {
        let pkg = format!("jungle.p{}", rng.gen_range(0..spec.packages.max(1)));
        let name = format!("Gen{c}");
        let ty = api.declare_class(&pkg, &name).expect("unique jungle class name");
        if !generated.is_empty() && rng.gen_bool(spec.subclass_prob) {
            let sup = generated[rng.gen_range(0..generated.len())];
            // Ignore failures (e.g. hierarchy rules) — purely best-effort.
            let _ = api.types_mut().set_superclass(ty, sup);
        }
        generated.push(ty);
        stats.classes += 1;
    }

    let pick_type = |rng: &mut SmallRng, generated: &[TyId], api: &Api| -> TyId {
        if !existing.is_empty() && rng.gen_bool(spec.cross_link_prob) {
            existing[rng.gen_range(0..existing.len())]
        } else if rng.gen_bool(0.12) {
            api.types().prim(match rng.gen_range(0..4) {
                0 => Prim::Int,
                1 => Prim::Boolean,
                2 => Prim::Long,
                _ => Prim::Double,
            })
        } else {
            generated[rng.gen_range(0..generated.len())]
        }
    };

    for (ci, &ty) in generated.iter().enumerate() {
        let n_methods = rng.gen_range(1..=spec.avg_methods * 2 - 1);
        for m in 0..n_methods {
            let is_ctor = m == 0 && rng.gen_bool(0.5);
            let is_static = !is_ctor && rng.gen_bool(0.2);
            let n_params = rng.gen_range(0..=3);
            let params: Vec<TyId> =
                (0..n_params).map(|_| pick_type(&mut rng, &generated, api)).collect();
            let ret = if is_ctor {
                ty
            } else if rng.gen_bool(0.1) {
                api.types().void()
            } else {
                pick_type(&mut rng, &generated, api)
            };
            let def = MethodDef {
                name: if is_ctor { "<init>".to_owned() } else { format!("gen{ci}m{m}") },
                declaring: ty,
                params,
                param_names: Vec::new(),
                ret,
                visibility: if rng.gen_bool(0.9) { Visibility::Public } else { Visibility::Protected },
                is_static,
                is_constructor: is_ctor,
            };
            if api.add_method(def).is_ok() {
                stats.methods += 1;
            }
        }
        if rng.gen_bool(spec.field_prob) {
            let fty = pick_type(&mut rng, &generated, api);
            if !matches!(api.types().ty(fty), Ty::Void) {
                let def = FieldDef {
                    name: format!("field{ci}"),
                    declaring: ty,
                    ty: fty,
                    visibility: Visibility::Public,
                    is_static: rng.gen_bool(0.3),
                };
                if api.add_field(def).is_ok() {
                    stats.fields += 1;
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use jungloid_apidef::ApiLoader;

    fn small_spec() -> JungleSpec {
        JungleSpec { classes: 200, packages: 8, avg_methods: 5, ..JungleSpec::default() }
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = ApiLoader::with_prelude().finish().unwrap();
        let mut b = ApiLoader::with_prelude().finish().unwrap();
        let s1 = grow(&mut a, &small_spec());
        let s2 = grow(&mut b, &small_spec());
        assert_eq!(s1, s2);
        assert_eq!(a.method_count(), b.method_count());
        // Spot-check a random method's shape matches.
        let m = a.method_ids().last().unwrap();
        assert_eq!(a.method(m).name, b.method(m).name);
        assert_eq!(a.method(m).params, b.method(m).params);
    }

    #[test]
    fn different_seed_differs() {
        let mut a = ApiLoader::with_prelude().finish().unwrap();
        let mut b = ApiLoader::with_prelude().finish().unwrap();
        grow(&mut a, &small_spec());
        grow(&mut b, &JungleSpec { seed: 99, ..small_spec() });
        let names_a: Vec<String> = a.method_ids().map(|m| a.method(m).name.clone()).collect();
        let names_b: Vec<String> = b.method_ids().map(|m| b.method(m).name.clone()).collect();
        // Same name scheme but different shapes overall.
        assert_eq!(names_a.len() == names_b.len(), names_a == names_b);
    }

    #[test]
    fn scale_is_roughly_as_requested() {
        let mut api = ApiLoader::with_prelude().finish().unwrap();
        let stats = grow(&mut api, &small_spec());
        assert_eq!(stats.classes, 200);
        // avg_methods 5 → between 1 and 9 per class.
        assert!(stats.methods >= 200 && stats.methods <= 9 * 200);
    }

    #[test]
    fn default_spec_is_paper_scale() {
        let spec = JungleSpec::default();
        // ≈ 3000 classes × ≈7 methods ≈ 21k methods (J2SE's count, §1).
        assert_eq!(spec.classes * spec.avg_methods, 21_000);
    }

    #[test]
    fn generated_api_is_searchable() {
        use prospector_core::Prospector;
        let mut api = ApiLoader::with_prelude().finish().unwrap();
        grow(&mut api, &small_spec());
        let a = api.types().resolve("Gen0").unwrap();
        let object = api.types().object().unwrap();
        let p = Prospector::new(api);
        // Every generated class can at least widen toward Object through
        // some chain; querying must not panic and must answer quickly.
        let result = p.query(a, object);
        assert!(result.is_ok());
    }
}
