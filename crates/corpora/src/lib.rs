//! The evaluation substrate: modeled Eclipse/J2SE APIs, the MiniJava
//! mining corpus, the paper's problem sets, and the procedural API-jungle
//! generator.
//!
//! The top-level entry point is [`build`], which assembles the same
//! artifact the paper's tool ships with: the jungloid graph over the
//! modeled APIs, refined with examples mined from the corpus.
//!
//! ```
//! use prospector_corpora::{build, BuildOptions};
//!
//! let built = build(&BuildOptions::default()).expect("corpus builds");
//! let api = built.prospector.api();
//! let tin = api.types().resolve("IFile").unwrap();
//! let tout = api.types().resolve("ASTNode").unwrap();
//! let result = built.prospector.query(tin, tout).unwrap();
//! assert!(result.suggestions[0].code.contains("parseCompilationUnit"));
//! ```

pub mod behavior;
pub mod client_gen;
pub mod corpus_ext;
pub mod corpus_src;
pub mod jungle;
pub mod problems;
pub mod problems_ext;
pub mod report;
pub mod stubs;
pub mod stubs_distractors;
pub mod stubs_ext;
pub mod synth;

use jungloid_apidef::{Api, ApiLoader};
use jungloid_dataflow::{LoweredCorpus, MineReport, Miner, MinerConfig};
use jungloid_minijava::ast::Unit;
use jungloid_minijava::parse::parse_unit;
use prospector_core::{GraphConfig, Prospector};

/// How to assemble the evaluation engine.
#[derive(Clone, Copy, Debug)]
pub struct BuildOptions {
    /// Mine the client corpus and splice examples in (§4). Off = the
    /// signature-graph-only baseline of §3.
    pub mining: bool,
    /// Generalize mined examples before splicing (§4.2). Ignored when
    /// `mining` is off.
    pub generalize: bool,
    /// Let synthesis use `protected` members (the §7 fix; paper default
    /// is public-only).
    pub include_protected: bool,
    /// The §4.3 extension: restrict `Object`/`String` parameter slots to
    /// parameter-mined usages. Off by default (the paper left it
    /// untested).
    pub param_mining: bool,
    /// Load the extended API pack (zip/DOM/Swing-tree/JDBC) and its
    /// corpus alongside the paper's Eclipse/J2SE model.
    pub extended: bool,
    /// Also grow the procedural jungle (performance experiments only —
    /// Table 1 runs on the hand-modeled APIs alone).
    pub jungle: Option<jungle::JungleSpec>,
    /// Miner limits.
    pub miner: MinerConfig,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            mining: true,
            generalize: true,
            include_protected: false,
            param_mining: false,
            extended: false,
            jungle: None,
            miner: MinerConfig::default(),
        }
    }
}

/// A fully assembled engine plus build diagnostics.
#[derive(Debug)]
pub struct Built {
    /// The query engine.
    pub prospector: Prospector,
    /// What mining extracted (when enabled).
    pub mine_report: Option<MineReport>,
}

/// An assembly failure (stub syntax, corpus resolution, ill-typed mined
/// example). All variants indicate a bug in the bundled corpora.
#[derive(Debug)]
pub struct BuildError {
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corpus assembly failed: {}", self.message)
    }
}

impl std::error::Error for BuildError {}

fn err<E: std::fmt::Display>(e: E) -> BuildError {
    BuildError { message: e.to_string() }
}

/// Loads the hand-modeled API stubs (prelude + J2SE + Eclipse fragments).
///
/// # Errors
///
/// Fails only if the bundled stubs are malformed.
pub fn eclipse_api() -> Result<Api, BuildError> {
    api_with(false)
}

/// Like [`eclipse_api`] plus the extended pack (zip/DOM/Swing-tree/JDBC).
///
/// # Errors
///
/// Fails only if the bundled stubs are malformed.
pub fn extended_api() -> Result<Api, BuildError> {
    api_with(true)
}

fn api_with(extended: bool) -> Result<Api, BuildError> {
    let mut loader = ApiLoader::with_prelude();
    for (file, text) in stubs::ALL_STUBS
        .iter()
        .chain(&stubs::EXTRA_STUBS)
        .chain(&stubs_distractors::DISTRACTOR_STUBS)
    {
        loader.add_source(file, text).map_err(err)?;
    }
    if extended {
        for (file, text) in &stubs_ext::EXTENDED_STUBS {
            loader.add_source(file, text).map_err(err)?;
        }
    }
    loader.finish().map_err(err)
}

/// Parses the bundled MiniJava corpus.
///
/// # Errors
///
/// Fails only if the bundled sources are malformed.
pub fn corpus_units() -> Result<Vec<Unit>, BuildError> {
    corpus_src::ALL_CORPUS
        .iter()
        .map(|(file, text)| parse_unit(file, text).map_err(err))
        .collect()
}

/// Parses the bundled + extended MiniJava corpus.
///
/// # Errors
///
/// Fails only if the bundled sources are malformed.
pub fn extended_corpus_units() -> Result<Vec<Unit>, BuildError> {
    corpus_src::ALL_CORPUS
        .iter()
        .chain(&corpus_ext::EXTENDED_CORPUS)
        .map(|(file, text)| parse_unit(file, text).map_err(err))
        .collect()
}

/// Assembles the evaluation engine per `options`.
///
/// # Errors
///
/// Propagates assembly failures (which indicate corpus bugs, not user
/// error).
pub fn build(options: &BuildOptions) -> Result<Built, BuildError> {
    let mut api = api_with(options.extended)?;
    let mut param_examples = Vec::new();
    let mine_report = if options.mining {
        let _span = prospector_obs::stage("mine");
        let units =
            if options.extended { extended_corpus_units()? } else { corpus_units()? };
        let lowered = LoweredCorpus::lower(&mut api, &units).map_err(err)?;
        let mut miner = Miner::new(&api, &lowered);
        miner.config = options.miner;
        if options.param_mining {
            let weak: Vec<_> = [
                api.types().object(),
                api.types().resolve("java.lang.String").ok(),
            ]
            .into_iter()
            .flatten()
            .collect();
            param_examples = miner.mine_params(&weak).examples;
        }
        Some(miner.mine())
    } else {
        None
    };
    if let Some(spec) = &options.jungle {
        jungle::grow(&mut api, spec);
    }
    let mut prospector = {
        let _span = prospector_obs::stage("build");
        Prospector::with_config(
            api,
            GraphConfig {
                include_protected: options.include_protected,
                restrict_weak_params: options.param_mining,
            },
        )
    };
    if let Some(report) = &mine_report {
        prospector.add_examples(&report.examples, options.generalize).map_err(err)?;
    }
    if !param_examples.is_empty() {
        prospector.add_param_examples(&param_examples, options.generalize).map_err(err)?;
    }
    Ok(Built { prospector, mine_report })
}

/// The default engine: mining + generalization on, public members only.
///
/// # Panics
///
/// Panics if the bundled corpora fail to assemble (a bug in this crate).
#[must_use]
pub fn build_default() -> Prospector {
    build(&BuildOptions::default()).expect("bundled corpora assemble").prospector
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stubs_load() {
        let api = eclipse_api().unwrap();
        // Spot checks: the paper's key classes exist with the right shape.
        let ifile = api.types().resolve("IFile").unwrap();
        let iresource = api.types().resolve("IResource").unwrap();
        assert!(api.types().is_subtype(ifile, iresource));
        let cu = api.types().resolve("CompilationUnit").unwrap();
        let ast = api.types().resolve("ASTNode").unwrap();
        assert!(api.types().is_subtype(cu, ast));
        let jc = api.types().resolve("JavaCore").unwrap();
        assert_eq!(api.lookup_static_method(jc, "createCompilationUnitFrom", 1).len(), 1);
        // getLayer is protected (Table 1 row 19's failure hinges on it).
        let agep = api.types().resolve("AbstractGraphicalEditPart").unwrap();
        let get_layer = api.lookup_instance_method(agep, "getLayer", 1)[0];
        assert_eq!(api.method(get_layer).visibility, jungloid_apidef::Visibility::Protected);
    }

    #[test]
    fn corpus_parses_and_lowers() {
        let mut api = eclipse_api().unwrap();
        let units = corpus_units().unwrap();
        let lowered = LoweredCorpus::lower(&mut api, &units).unwrap();
        assert!(lowered.cast_count() >= 12, "expected a rich cast corpus");
    }

    #[test]
    fn default_build_mines_examples() {
        let built = build(&BuildOptions::default()).unwrap();
        let report = built.mine_report.as_ref().unwrap();
        assert!(report.cast_sites >= 12);
        assert!(!report.examples.is_empty());
        assert!(built.prospector.graph().mined_node_count() > 0);
    }

    #[test]
    fn intro_example_answers() {
        let built = build(&BuildOptions::default()).unwrap();
        let api = built.prospector.api();
        let ifile = api.types().resolve("IFile").unwrap();
        let ast = api.types().resolve("ASTNode").unwrap();
        let result = built.prospector.query(ifile, ast).unwrap();
        assert!(result.suggestions[0]
            .code
            .contains("AST.parseCompilationUnit(JavaCore.createCompilationUnitFrom("));
    }
}
