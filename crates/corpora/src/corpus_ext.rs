//! Extended mining corpus: the era-defining pre-generics cast idioms
//! matching `stubs_ext`.

/// Zip iteration: the canonical `(ZipEntry) entries.nextElement()` cast,
/// in both single-shot and guarded-loop shapes.
pub const ZIP_CORPUS: &str = r#"
package corpus.zip;

class ArchiveLister {
    String firstEntryName(ZipFile zip) {
        ZipEntry entry = (ZipEntry) zip.entries().nextElement();
        return entry.getName();
    }

    void listAll(ZipFile zip) {
        Enumeration entries = zip.entries();
        while (entries.hasMoreElements()) {
            ZipEntry entry = (ZipEntry) entries.nextElement();
            if (!entry.isDirectory()) {
                entry.getName().length();
            }
        }
    }

    InputStream openFirst(ZipFile zip) {
        ZipEntry entry = (ZipEntry) zip.entries().nextElement();
        return zip.getInputStream(entry);
    }
}
"#;

/// DOM traversal: `(Element) list.item(i)` and `(Text)
/// element.getFirstChild()`, plus the factory chain clients use to get a
/// `Document` in the first place.
pub const DOM_CORPUS: &str = r#"
package corpus.xml;

class ConfigReader {
    Element rootOf(String uri) {
        Document doc = DocumentBuilderFactory.newInstance().newDocumentBuilder().parse(uri);
        return doc.getDocumentElement();
    }

    Element firstNamed(Document doc, String tag) {
        NodeList list = doc.getElementsByTagName(tag);
        if (list.getLength() > 0) {
            return (Element) list.item(0);
        }
        return doc.getDocumentElement();
    }

    String textOf(Element element) {
        Text text = (Text) element.getFirstChild();
        return text.getData();
    }

    Attr namedAttr(Node node) {
        return (Attr) node.getFirstChild();
    }
}
"#;

/// Swing trees: `(DefaultMutableTreeNode)
/// path.getLastPathComponent()` and the model-root variant.
pub const TREE_CORPUS: &str = r#"
package corpus.swing;

class TreeSelectionReader {
    Object selectedUserObject(JTree tree) {
        TreePath path = tree.getSelectionPath();
        if (path == null) {
            return null;
        }
        DefaultMutableTreeNode node = (DefaultMutableTreeNode) path.getLastPathComponent();
        return node.getUserObject();
    }

    DefaultMutableTreeNode rootNode(JTree tree) {
        TreeModel model = tree.getModel();
        return (DefaultMutableTreeNode) model.getRoot();
    }
}
"#;

/// All extended corpus sources as `(label, text)` pairs.
pub const EXTENDED_CORPUS: [(&str, &str); 3] = [
    ("zip.mj", ZIP_CORPUS),
    ("dom.mj", DOM_CORPUS),
    ("tree.mj", TREE_CORPUS),
];
