//! Property: pretty-printing any MiniJava AST yields source that parses
//! back to the same AST (modulo the `Name`-vs-`Field` normalization the
//! printer performs, which the generator below avoids by construction).
//!
//! ASTs are drawn from seeded deterministic generators — failures
//! reproduce by seed.

use jungloid_minijava::ast::{Class, Expr, Lit, Method, Stmt, TypeName, Unit};
use jungloid_minijava::parse::{parse_expr, parse_unit};
use jungloid_minijava::print::{expr_to_string, unit_to_string};
use prospector_obs::SmallRng;

const KEYWORDS: [&str; 15] = [
    "new", "null", "true", "false", "return", "class", "extends", "implements", "package", "void",
    "static", "public", "protected", "private", "final",
];

fn pick(rng: &mut SmallRng, alphabet: &str) -> char {
    let chars: Vec<char> = alphabet.chars().collect();
    chars[rng.gen_range(0..chars.len())]
}

fn ident(rng: &mut SmallRng) -> String {
    loop {
        let mut s = String::new();
        s.push(pick(rng, "abcdefghijklmnopqrstuvwxyz"));
        for _ in 0..rng.gen_range(0..=6) {
            s.push(pick(rng, "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"));
        }
        if !KEYWORDS.contains(&s.as_str()) && s != "abstract" {
            return s;
        }
    }
}

fn type_ident(rng: &mut SmallRng) -> String {
    let mut s = String::new();
    s.push(pick(rng, "ABCDEFGHIJKLMNOPQRSTUVWXYZ"));
    for _ in 0..rng.gen_range(0..=6) {
        s.push(pick(rng, "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"));
    }
    s
}

fn type_name(rng: &mut SmallRng) -> TypeName {
    let parts = (0..rng.gen_range(1..3)).map(|_| type_ident(rng)).collect();
    TypeName { parts, dims: rng.gen_range(0..2) }
}

fn str_lit(rng: &mut SmallRng) -> String {
    // Printable ASCII minus `"` and `\`.
    let mut s = String::new();
    for _ in 0..rng.gen_range(0..=8) {
        loop {
            let c = char::from(u8::try_from(rng.gen_range(0x20..0x7f)).unwrap());
            if c != '"' && c != '\\' {
                s.push(c);
                break;
            }
        }
    }
    s
}

fn lit(rng: &mut SmallRng) -> Expr {
    match rng.gen_range(0..4) {
        0 => Expr::Lit(Lit::Int(rng.gen_range(0..10_000) as i64)),
        1 => Expr::Lit(Lit::Str(str_lit(rng))),
        2 => Expr::Lit(Lit::Null),
        _ => Expr::Lit(Lit::Bool(rng.gen_bool(0.5))),
    }
}

fn leaf(rng: &mut SmallRng) -> Expr {
    match rng.gen_range(0..3) {
        0 => lit(rng),
        1 => Expr::Name { parts: (0..rng.gen_range(1..3)).map(|_| ident(rng)).collect() },
        _ => Expr::ClassLit { ty: TypeName { parts: vec![type_ident(rng)], dims: 0 } },
    }
}

const BINOPS: [&str; 10] = ["==", "!=", "<", ">", "<=", ">=", "&&", "||", "+", "-"];

/// Expressions the printer round-trips exactly. `Expr::Field` is excluded
/// because the parser re-absorbs `name.field` chains into `Expr::Name`;
/// the printer's output for generated snippets never needs bare `Field`
/// on name receivers (covered by unit tests instead).
fn expr(rng: &mut SmallRng, depth: usize) -> Expr {
    if depth == 0 {
        return leaf(rng);
    }
    match rng.gen_range(0..8) {
        0 | 1 => leaf(rng),
        2 => Expr::New {
            class: TypeName { dims: 0, ..type_name(rng) },
            args: (0..rng.gen_range(0..3)).map(|_| expr(rng, depth - 1)).collect(),
        },
        3 => Expr::Cast { ty: type_name(rng), expr: Box::new(expr(rng, depth - 1)) },
        4 => Expr::Call {
            recv: Some(Box::new(expr(rng, depth - 1))),
            name: ident(rng),
            args: (0..rng.gen_range(0..3)).map(|_| expr(rng, depth - 1)).collect(),
        },
        5 => Expr::Call {
            recv: None,
            name: ident(rng),
            args: (0..rng.gen_range(0..3)).map(|_| expr(rng, depth - 1)).collect(),
        },
        6 => Expr::Binary {
            op: BINOPS[rng.gen_range(0..BINOPS.len())],
            lhs: Box::new(expr(rng, depth - 1)),
            rhs: Box::new(expr(rng, depth - 1)),
        },
        _ => Expr::Not { expr: Box::new(expr(rng, depth - 1)) },
    }
}

fn stmt(rng: &mut SmallRng) -> Stmt {
    match rng.gen_range(0..4) {
        0 => Stmt::Local {
            ty: type_name(rng),
            name: ident(rng),
            init: rng.gen_bool(0.5).then(|| expr(rng, 2)),
        },
        1 => Stmt::Assign { name: ident(rng), value: expr(rng, 2) },
        2 => Stmt::Return(rng.gen_bool(0.5).then(|| expr(rng, 2))),
        _ => Stmt::Expr(expr(rng, 2)),
    }
}

fn unit(rng: &mut SmallRng) -> Unit {
    let package = rng
        .gen_bool(0.5)
        .then(|| (0..rng.gen_range(1..3)).map(|_| ident(rng)).collect::<Vec<_>>().join("."));
    Unit {
        file: "prop.mj".to_owned(),
        package,
        classes: vec![Class {
            name: type_ident(rng),
            extends: rng.gen_bool(0.5).then(|| TypeName { dims: 0, ..type_name(rng) }),
            implements: vec![],
            methods: vec![Method {
                mods: vec!["static".to_owned()],
                ret: Some(TypeName::simple("void")),
                name: "run".to_owned(),
                params: vec![(TypeName::simple("Thing"), "input".to_owned())],
                body: (0..rng.gen_range(0..5)).map(|_| stmt(rng)).collect(),
            }],
        }],
    }
}

#[test]
fn printed_expressions_reparse_to_same_ast() {
    for seed in 0..256u64 {
        let e = expr(&mut SmallRng::seed_from_u64(seed), 3);
        let printed = expr_to_string(&e);
        let parsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("`{printed}` failed to reparse: {err}"));
        assert_eq!(parsed, e, "round trip changed `{printed}`");
    }
}

#[test]
fn printed_units_reparse_to_same_ast() {
    for seed in 0..128u64 {
        let u = unit(&mut SmallRng::seed_from_u64(seed));
        let printed = unit_to_string(&u);
        let parsed = parse_unit("prop.mj", &printed)
            .unwrap_or_else(|err| panic!("unit failed to reparse: {err}\n{printed}"));
        assert_eq!(parsed.package, u.package);
        assert_eq!(parsed.classes, u.classes, "round trip changed:\n{printed}");
    }
}
