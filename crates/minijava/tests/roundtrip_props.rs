//! Property: pretty-printing any MiniJava AST yields source that parses
//! back to the same AST (modulo the `Name`-vs-`Field` normalization the
//! printer performs, which the generator below avoids by construction).

use jungloid_minijava::ast::{Class, Expr, Lit, Method, Stmt, TypeName, Unit};
use jungloid_minijava::parse::{parse_expr, parse_unit};
use jungloid_minijava::print::{expr_to_string, unit_to_string};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9]{0,6}".prop_filter("not a keyword", |s| {
        !matches!(
            s.as_str(),
            "new" | "null" | "true" | "false" | "return" | "class" | "extends" | "implements"
                | "package" | "void" | "static" | "public" | "protected" | "private" | "final"
                | "abstract"
        )
    })
}

fn type_ident() -> impl Strategy<Value = String> {
    "[A-Z][a-zA-Z0-9]{0,6}".prop_map(|s| s)
}

fn type_name() -> impl Strategy<Value = TypeName> {
    (proptest::collection::vec(type_ident(), 1..3), 0usize..2)
        .prop_map(|(parts, dims)| TypeName { parts, dims })
}

fn lit() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..10_000).prop_map(|n| Expr::Lit(Lit::Int(n))),
        "[ -~&&[^\"\\\\]]{0,8}".prop_map(|s| Expr::Lit(Lit::Str(s))),
        Just(Expr::Lit(Lit::Null)),
        any::<bool>().prop_map(|b| Expr::Lit(Lit::Bool(b))),
    ]
}

/// Expressions the printer round-trips exactly. `Expr::Field` is excluded
/// because the parser re-absorbs `name.field` chains into `Expr::Name`;
/// the printer's output for generated snippets never needs bare `Field`
/// on name receivers (covered by unit tests instead).
fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        lit(),
        proptest::collection::vec(ident(), 1..3).prop_map(|parts| Expr::Name { parts }),
        (type_ident()).prop_map(|t| Expr::ClassLit { ty: TypeName { parts: vec![t], dims: 0 } }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        let op = prop_oneof![
            Just("=="),
            Just("!="),
            Just("<"),
            Just(">"),
            Just("<="),
            Just(">="),
            Just("&&"),
            Just("||"),
            Just("+"),
            Just("-"),
        ];
        prop_oneof![
            (type_name(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(class, args)| Expr::New { class: TypeName { dims: 0, ..class }, args }),
            (type_name(), inner.clone())
                .prop_map(|(ty, e)| Expr::Cast { ty, expr: Box::new(e) }),
            (inner.clone(), ident(), proptest::collection::vec(inner.clone(), 0..3)).prop_map(
                |(recv, name, args)| Expr::Call { recv: Some(Box::new(recv)), name, args }
            ),
            (ident(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(name, args)| Expr::Call { recv: None, name, args }),
            (op, inner.clone(), inner.clone()).prop_map(|(op, lhs, rhs)| Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            }),
            inner.prop_map(|e| Expr::Not { expr: Box::new(e) }),
        ]
    })
}

fn stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (type_name(), ident(), proptest::option::of(expr()))
            .prop_map(|(ty, name, init)| Stmt::Local { ty, name, init }),
        (ident(), expr()).prop_map(|(name, value)| Stmt::Assign { name, value }),
        proptest::option::of(expr()).prop_map(Stmt::Return),
        expr().prop_map(Stmt::Expr),
    ]
}

fn unit() -> impl Strategy<Value = Unit> {
    (
        proptest::option::of(proptest::collection::vec(ident(), 1..3).prop_map(|p| p.join("."))),
        type_ident(),
        proptest::collection::vec(stmt(), 0..5),
        proptest::option::of(type_name().prop_map(|t| TypeName { dims: 0, ..t })),
    )
        .prop_map(|(package, class_name, body, extends)| Unit {
            file: "prop.mj".to_owned(),
            package,
            classes: vec![Class {
                name: class_name.clone(),
                extends,
                implements: vec![],
                methods: vec![Method {
                    mods: vec!["static".to_owned()],
                    ret: Some(TypeName::simple("void")),
                    name: "run".to_owned(),
                    params: vec![(TypeName::simple("Thing"), "input".to_owned())],
                    body,
                }],
            }],
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn printed_expressions_reparse_to_same_ast(e in expr()) {
        let printed = expr_to_string(&e);
        let parsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("`{printed}` failed to reparse: {err}"));
        prop_assert_eq!(parsed, e, "round trip changed `{}`", printed);
    }

    #[test]
    fn printed_units_reparse_to_same_ast(u in unit()) {
        let printed = unit_to_string(&u);
        let parsed = parse_unit("prop.mj", &printed)
            .unwrap_or_else(|err| panic!("unit failed to reparse: {err}\n{printed}"));
        prop_assert_eq!(&parsed.package, &u.package);
        prop_assert_eq!(&parsed.classes, &u.classes, "round trip changed:\n{}", printed);
    }
}
