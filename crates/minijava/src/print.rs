//! Pretty printer: renders MiniJava ASTs back to parseable source.
//!
//! The synthesizer builds its suggested snippets as [`crate::ast`] values
//! and prints them with this module, which guarantees (and the property
//! tests check) that every Prospector suggestion re-parses.

use std::fmt::Write as _;

use crate::ast::{Class, Expr, Lit, Method, Stmt, Unit};

/// Renders an expression.
#[must_use]
pub fn expr_to_string(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, e);
    s
}

/// Renders a statement, without trailing newline.
#[must_use]
pub fn stmt_to_string(stmt: &Stmt) -> String {
    match stmt {
        Stmt::Local { ty, name, init } => match init {
            Some(e) => format!("{ty} {name} = {};", expr_to_string(e)),
            None => format!("{ty} {name};"),
        },
        Stmt::Assign { name, value } => format!("{name} = {};", expr_to_string(value)),
        Stmt::Return(None) => "return;".to_owned(),
        Stmt::Return(Some(e)) => format!("return {};", expr_to_string(e)),
        Stmt::Expr(e) => format!("{};", expr_to_string(e)),
        Stmt::If { cond, then, els } => {
            let mut out = format!("if ({}) {{ ", expr_to_string(cond));
            for st in then {
                out.push_str(&stmt_to_string(st));
                out.push(' ');
            }
            out.push('}');
            if let Some(els) = els {
                out.push_str(" else { ");
                for st in els {
                    out.push_str(&stmt_to_string(st));
                    out.push(' ');
                }
                out.push('}');
            }
            out
        }
        Stmt::While { cond, body } => {
            let mut out = format!("while ({}) {{ ", expr_to_string(cond));
            for st in body {
                out.push_str(&stmt_to_string(st));
                out.push(' ');
            }
            out.push('}');
            out
        }
    }
}

/// Renders a whole compilation unit.
#[must_use]
pub fn unit_to_string(unit: &Unit) -> String {
    let mut s = String::new();
    if let Some(pkg) = &unit.package {
        let _ = writeln!(s, "package {pkg};");
        s.push('\n');
    }
    for class in &unit.classes {
        write_class(&mut s, class);
    }
    s
}

fn write_class(s: &mut String, class: &Class) {
    let _ = write!(s, "class {}", class.name);
    if let Some(sup) = &class.extends {
        let _ = write!(s, " extends {sup}");
    }
    if !class.implements.is_empty() {
        let names: Vec<String> = class.implements.iter().map(ToString::to_string).collect();
        let _ = write!(s, " implements {}", names.join(", "));
    }
    s.push_str(" {\n");
    for m in &class.methods {
        write_method(s, m, class);
    }
    s.push_str("}\n");
}

fn write_method(s: &mut String, m: &Method, class: &Class) {
    s.push_str("    ");
    for word in &m.mods {
        let _ = write!(s, "{word} ");
    }
    match &m.ret {
        Some(ret) => {
            let _ = write!(s, "{ret} {}", m.name);
        }
        None => {
            // Constructor; print under the class's name to stay parseable.
            let _ = write!(s, "{}", class.name);
        }
    }
    s.push('(');
    let params: Vec<String> = m.params.iter().map(|(t, n)| format!("{t} {n}")).collect();
    s.push_str(&params.join(", "));
    s.push_str(") {\n");
    for stmt in &m.body {
        let _ = writeln!(s, "        {}", stmt_to_string(stmt));
    }
    s.push_str("    }\n");
}

fn write_expr(s: &mut String, e: &Expr) {
    match e {
        Expr::Name { parts } => s.push_str(&parts.join(".")),
        Expr::Lit(Lit::Int(n)) => {
            let _ = write!(s, "{n}");
        }
        Expr::Lit(Lit::Str(text)) => {
            s.push('"');
            for c in text.chars() {
                match c {
                    '"' => s.push_str("\\\""),
                    '\\' => s.push_str("\\\\"),
                    '\n' => s.push_str("\\n"),
                    '\t' => s.push_str("\\t"),
                    other => s.push(other),
                }
            }
            s.push('"');
        }
        Expr::Lit(Lit::Null) => s.push_str("null"),
        Expr::Lit(Lit::Bool(b)) => s.push_str(if *b { "true" } else { "false" }),
        Expr::ClassLit { ty } => {
            let _ = write!(s, "{ty}.class");
        }
        Expr::New { class, args } => {
            let _ = write!(s, "new {class}");
            write_args(s, args);
        }
        Expr::Cast { ty, expr } => {
            let _ = write!(s, "({ty}) ");
            // Operator operands must be parenthesized or the cast
            // lookahead would misread `(T) !x` as a parenthesized name.
            if matches!(**expr, Expr::Binary { .. } | Expr::Not { .. }) {
                s.push('(');
                write_expr(s, expr);
                s.push(')');
            } else {
                write_expr(s, expr);
            }
        }
        Expr::Call { recv, name, args } => {
            if let Some(recv) = recv {
                write_receiver(s, recv);
                let _ = write!(s, ".{name}");
            } else {
                s.push_str(name);
            }
            write_args(s, args);
        }
        Expr::Field { recv, name } => {
            write_receiver(s, recv);
            let _ = write!(s, ".{name}");
        }
        Expr::Binary { op, lhs, rhs } => {
            write_operand(s, lhs);
            let _ = write!(s, " {op} ");
            write_operand(s, rhs);
        }
        Expr::Not { expr } => {
            s.push('!');
            write_operand(s, expr);
        }
    }
}

/// Operands of binary/unary operators are parenthesized whenever they are
/// themselves operator expressions or casts, which keeps printing
/// precedence-free and round-trippable.
fn write_operand(s: &mut String, e: &Expr) {
    if matches!(e, Expr::Binary { .. } | Expr::Not { .. } | Expr::Cast { .. }) {
        s.push('(');
        write_expr(s, e);
        s.push(')');
    } else {
        write_expr(s, e);
    }
}

/// Cast and operator receivers must be parenthesized:
/// `((ITextEditor) e).getDoc()`, `(a == b).toString()`.
fn write_receiver(s: &mut String, recv: &Expr) {
    if matches!(recv, Expr::Cast { .. } | Expr::Binary { .. } | Expr::Not { .. }) {
        s.push('(');
        write_expr(s, recv);
        s.push(')');
    } else {
        write_expr(s, recv);
    }
}

fn write_args(s: &mut String, args: &[Expr]) {
    s.push('(');
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        write_expr(s, a);
    }
    s.push(')');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_expr, parse_unit};

    fn round_trip_expr(src: &str) {
        let e = parse_expr(src).unwrap();
        let printed = expr_to_string(&e);
        let e2 = parse_expr(&printed).unwrap_or_else(|err| panic!("reparse `{printed}`: {err}"));
        assert_eq!(e, e2, "round trip changed `{src}` -> `{printed}`");
    }

    #[test]
    fn expr_round_trips() {
        for src in [
            "a.b.c",
            "x.m().n(y, z.w())",
            "(T) x.m()",
            "((A) b).c()",
            "new B(new C(d), 3)",
            r#"reg.get("key\n\"q\"", null, true, false)"#,
            "Part.getAdapter(IDebugView.class)",
            "(a.b.C[]) xs",
            "f().data.m()",
        ] {
            round_trip_expr(src);
        }
    }

    #[test]
    fn cast_receiver_parenthesized() {
        let e = parse_expr("((ITextEditor) part).getDocumentProvider()").unwrap();
        assert_eq!(expr_to_string(&e), "((ITextEditor) part).getDocumentProvider()");
    }

    #[test]
    fn unit_round_trips() {
        let src = r#"
            package corpus;
            class Sample extends Base implements I {
                Sample(int n) { size = n; }
                protected Object get(IDebugView view) {
                    ISelection s = view.getViewer().getSelection();
                    IStructuredSelection sel = (IStructuredSelection) s;
                    return sel.getFirstElement();
                }
            }
        "#;
        let u1 = parse_unit("s.mj", src).unwrap();
        let printed = unit_to_string(&u1);
        let u2 = parse_unit("s.mj", &printed).unwrap();
        // File labels differ only if we pass different names; compare bodies.
        assert_eq!(u1.package, u2.package);
        assert_eq!(u1.classes, u2.classes);
    }

    #[test]
    fn operators_and_control_flow_round_trip() {
        for src in [
            "a != null",
            "a == null && !b.isEmpty()",
            "x.size() > 0 || y < 3",
            "((IFile) r) != null",
            "n + 1 - k",
        ] {
            round_trip_expr(src);
        }
        let src = r#"
            class G {
                void m(Viewer v) {
                    ISelection s = v.getSelection();
                    if (s == null) { s = v.getSelection(); } else { drop(s); }
                    while (!s.isEmpty()) { s = v.getSelection(); }
                }
            }
        "#;
        let u1 = parse_unit("g.mj", src).unwrap();
        let printed = unit_to_string(&u1);
        let u2 = parse_unit("g.mj", &printed).unwrap();
        assert_eq!(u1.classes, u2.classes, "{printed}");
    }

    #[test]
    fn statements_render() {
        let u = parse_unit(
            "t.mj",
            "class T { void m() { Foo x; x = f(); g(); return x; } }",
        )
        .unwrap();
        let body = &u.classes[0].methods[0].body;
        let rendered: Vec<String> = body.iter().map(stmt_to_string).collect();
        assert_eq!(rendered, vec!["Foo x;", "x = f();", "g();", "return x;"]);
    }
}
