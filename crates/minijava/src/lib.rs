//! MiniJava-client: the little Java subset that Prospector's miner consumes.
//!
//! The PLDI 2005 jungloid-mining algorithm (§4.2) extracts *example
//! jungloids* from a corpus of ordinary Java client code. The extraction
//! only looks at straight-line data flow — locals, assignments, method
//! calls, `new` expressions, field accesses, casts, and returns — so this
//! crate implements exactly that fragment:
//!
//! * a lexer ([`lex`]) shared with the `.api` stub parser in
//!   `jungloid-apidef`;
//! * an untyped AST ([`ast`]) — name resolution and typing live in
//!   `jungloid-dataflow`, which knows about the API model;
//! * a hand-written recursive-descent parser ([`parse`]) including the
//!   classic cast-vs-parenthesis disambiguation;
//! * a pretty printer ([`print`](mod@print)) that renders ASTs back to source. The
//!   synthesizer in `prospector-core` builds its output snippets as MiniJava
//!   ASTs, so everything Prospector suggests is guaranteed to re-parse.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     package demo;
//!     class Client {
//!         Object grab(IDebugView view) {
//!             ISelection s = view.getViewer().getSelection();
//!             IStructuredSelection sel = (IStructuredSelection) s;
//!             return sel.getFirstElement();
//!         }
//!     }
//! "#;
//! let unit = jungloid_minijava::parse::parse_unit("demo.mj", src)?;
//! assert_eq!(unit.classes.len(), 1);
//! assert_eq!(unit.classes[0].methods[0].name, "grab");
//! # Ok::<(), jungloid_minijava::parse::ParseError>(())
//! ```

pub mod ast;
pub mod lex;
pub mod parse;
pub mod print;
