//! Recursive-descent parser for MiniJava-client source.

use crate::ast::{Class, Expr, Lit, Method, Stmt, TypeName, Unit};
use crate::lex::{lex, TokKind, Token};

/// A parse (or lex) failure with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// File label.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}: {}", self.file, self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Keywords that may prefix a class or member declaration and that the
/// miner does not interpret (beyond `static`, which it keeps).
const MODIFIERS: [&str; 6] = ["public", "protected", "private", "static", "final", "abstract"];

/// Parses one source file.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error.
pub fn parse_unit(file: &str, src: &str) -> Result<Unit, ParseError> {
    let tokens = lex(src).map_err(|e| ParseError {
        file: file.to_owned(),
        line: e.line,
        col: e.col,
        message: e.message,
    })?;
    Parser { file: file.to_owned(), toks: tokens, pos: 0 }.unit()
}

/// Parses a single expression (used by tests and by the CLI's query box).
///
/// # Errors
///
/// Returns a [`ParseError`] if `src` is not exactly one expression.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src).map_err(|e| ParseError {
        file: "<expr>".to_owned(),
        line: e.line,
        col: e.col,
        message: e.message,
    })?;
    let mut p = Parser { file: "<expr>".to_owned(), toks: tokens, pos: 0 };
    let e = p.expr()?;
    if !matches!(p.peek(), TokKind::Eof) {
        return Err(p.err_here(&format!("trailing input after expression: {}", p.peek())));
    }
    Ok(e)
}

struct Parser {
    file: String,
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokKind {
        &self.toks[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokKind {
        let i = (self.pos + n).min(self.toks.len() - 1);
        &self.toks[i].kind
    }

    fn bump(&mut self) -> TokKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn err_here(&self, message: &str) -> ParseError {
        let t = &self.toks[self.pos];
        ParseError {
            file: self.file.clone(),
            line: t.line,
            col: t.col,
            message: message.to_owned(),
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        if *self.peek() == TokKind::Punct(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.err_here(&format!("expected `{c}`, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            TokKind::Ident(_) => {
                let TokKind::Ident(s) = self.bump() else { unreachable!() };
                Ok(s)
            }
            other => Err(self.err_here(&format!("expected identifier, found {other}"))),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        self.peek().as_ident() == Some(kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn is_punct(&self, n: usize, c: char) -> bool {
        *self.peek_at(n) == TokKind::Punct(c)
    }

    // unit := ('package' dotted ';')? classdecl* EOF
    fn unit(mut self) -> Result<Unit, ParseError> {
        let package = if self.eat_kw("package") {
            let name = self.dotted_name()?;
            self.expect_punct(';')?;
            Some(name.join("."))
        } else {
            None
        };
        let mut classes = Vec::new();
        while !matches!(self.peek(), TokKind::Eof) {
            classes.push(self.class()?);
        }
        Ok(Unit { file: self.file, package, classes })
    }

    fn dotted_name(&mut self) -> Result<Vec<String>, ParseError> {
        let mut parts = vec![self.expect_ident()?];
        while self.is_punct(0, '.') && matches!(self.peek_at(1), TokKind::Ident(_)) {
            self.bump();
            parts.push(self.expect_ident()?);
        }
        Ok(parts)
    }

    fn type_name(&mut self) -> Result<TypeName, ParseError> {
        let parts = self.dotted_name()?;
        let mut dims = 0;
        while self.is_punct(0, '[') && self.is_punct(1, ']') {
            self.bump();
            self.bump();
            dims += 1;
        }
        Ok(TypeName { parts, dims })
    }

    fn modifiers(&mut self) -> Vec<String> {
        let mut mods = Vec::new();
        while let Some(word) = self.peek().as_ident() {
            if MODIFIERS.contains(&word) {
                mods.push(word.to_owned());
                self.bump();
            } else {
                break;
            }
        }
        mods
    }

    fn class(&mut self) -> Result<Class, ParseError> {
        self.modifiers();
        if !self.eat_kw("class") {
            return Err(self.err_here(&format!("expected `class`, found {}", self.peek())));
        }
        let name = self.expect_ident()?;
        let extends = if self.eat_kw("extends") { Some(self.type_name()?) } else { None };
        let mut implements = Vec::new();
        if self.eat_kw("implements") {
            implements.push(self.type_name()?);
            while self.is_punct(0, ',') {
                self.bump();
                implements.push(self.type_name()?);
            }
        }
        self.expect_punct('{')?;
        let mut methods = Vec::new();
        while !self.is_punct(0, '}') {
            methods.push(self.method(&name)?);
        }
        self.expect_punct('}')?;
        Ok(Class { name, extends, implements, methods })
    }

    fn method(&mut self, class_name: &str) -> Result<Method, ParseError> {
        let mods = self.modifiers();
        // Constructor: `Name (` with Name == enclosing class.
        let (ret, name) = if self.peek().as_ident() == Some(class_name) && self.is_punct(1, '(') {
            let name = self.expect_ident()?;
            (None, name)
        } else {
            let ret = if self.at_kw("void") {
                self.bump();
                TypeName::simple("void")
            } else {
                self.type_name()?
            };
            let name = self.expect_ident()?;
            (Some(ret), name)
        };
        self.expect_punct('(')?;
        let mut params = Vec::new();
        if !self.is_punct(0, ')') {
            loop {
                let ty = self.type_name()?;
                let pname = self.expect_ident()?;
                params.push((ty, pname));
                if self.is_punct(0, ',') {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect_punct(')')?;
        self.expect_punct('{')?;
        let mut body = Vec::new();
        while !self.is_punct(0, '}') {
            body.push(self.stmt()?);
        }
        self.expect_punct('}')?;
        Ok(Method { mods, ret, name, params, body })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw("if") {
            self.expect_punct('(')?;
            let cond = self.expr()?;
            self.expect_punct(')')?;
            let then = self.block()?;
            let els = if self.eat_kw("else") { Some(self.block()?) } else { None };
            return Ok(Stmt::If { cond, then, els });
        }
        if self.eat_kw("while") {
            self.expect_punct('(')?;
            let cond = self.expr()?;
            self.expect_punct(')')?;
            let body = self.block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_kw("return") {
            if self.is_punct(0, ';') {
                self.bump();
                return Ok(Stmt::Return(None));
            }
            let e = self.expr()?;
            self.expect_punct(';')?;
            return Ok(Stmt::Return(Some(e)));
        }
        // `x = e;`
        if matches!(self.peek(), TokKind::Ident(_)) && self.is_punct(1, '=') {
            let name = self.expect_ident()?;
            self.bump(); // `=`
            let value = self.expr()?;
            self.expect_punct(';')?;
            return Ok(Stmt::Assign { name, value });
        }
        // Local declaration: TypeName Ident (`=` | `;`). Tentative parse.
        if matches!(self.peek(), TokKind::Ident(_)) {
            let save = self.pos;
            if let Ok(ty) = self.type_name() {
                if matches!(self.peek(), TokKind::Ident(_))
                    && (self.is_punct(1, '=') || self.is_punct(1, ';'))
                {
                    let name = self.expect_ident()?;
                    let init = if self.is_punct(0, '=') {
                        self.bump();
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    self.expect_punct(';')?;
                    return Ok(Stmt::Local { ty, name, init });
                }
            }
            self.pos = save;
        }
        let e = self.expr()?;
        self.expect_punct(';')?;
        Ok(Stmt::Expr(e))
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct('{')?;
        let mut body = Vec::new();
        while !self.is_punct(0, '}') {
            body.push(self.stmt()?);
        }
        self.expect_punct('}')?;
        Ok(body)
    }

    /// Expressions: `||` < `&&` < comparisons < `+`/`-` < unary, where a
    /// unary is `!`-prefixes over a postfix chain.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.binary(0)
    }

    fn binary(&mut self, level: usize) -> Result<Expr, ParseError> {
        const LEVELS: [&[&str]; 4] =
            [&["||"], &["&&"], &["==", "!=", "<", ">", "<=", ">="], &["+", "-"]];
        if level >= LEVELS.len() {
            return self.unary();
        }
        let mut lhs = self.binary(level + 1)?;
        loop {
            let op = match self.peek() {
                TokKind::Op(o) if LEVELS[level].contains(o) => *o,
                _ => break,
            };
            self.bump();
            let rhs = self.binary(level + 1)?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), TokKind::Op("!")) {
            self.bump();
            let operand = self.unary()?;
            return Ok(Expr::Not { expr: Box::new(operand) });
        }
        self.postfix()
    }

    /// A primary followed by selectors (the original operator-free
    /// expression form).
    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if !(self.is_punct(0, '.') && matches!(self.peek_at(1), TokKind::Ident(_))) {
                break;
            }
            // `.class` on a bare name is handled inside `primary`; here it
            // can only follow a non-name expression, which is an error we
            // report when resolving.
            let is_call = self.is_punct(2, '(');
            self.bump(); // `.`
            let name = self.expect_ident()?;
            if is_call {
                let args = self.arg_list()?;
                e = Expr::Call { recv: Some(Box::new(e)), name, args };
            } else if name == "class" {
                let Expr::Name { parts } = e else {
                    return Err(self.err_here("`.class` requires a type name"));
                };
                e = Expr::ClassLit { ty: TypeName { parts, dims: 0 } };
            } else if let Expr::Name { mut parts } = e {
                parts.push(name);
                e = Expr::Name { parts };
            } else {
                e = Expr::Field { recv: Box::new(e), name };
            }
        }
        Ok(e)
    }

    fn arg_list(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect_punct('(')?;
        let mut args = Vec::new();
        if !self.is_punct(0, ')') {
            loop {
                args.push(self.expr()?);
                if self.is_punct(0, ',') {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect_punct(')')?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokKind::Punct('(') => {
                if self.looks_like_cast() {
                    self.bump(); // `(`
                    let ty = self.type_name()?;
                    self.expect_punct(')')?;
                    // Java precedence: a cast binds the following unary
                    // (postfix chain), not a whole binary expression.
                    let operand = self.unary()?;
                    Ok(Expr::Cast { ty, expr: Box::new(operand) })
                } else {
                    self.bump();
                    let inner = self.expr()?;
                    self.expect_punct(')')?;
                    Ok(inner)
                }
            }
            TokKind::Ident(word) => match word.as_str() {
                "new" => {
                    self.bump();
                    let class = self.type_name()?;
                    let args = self.arg_list()?;
                    Ok(Expr::New { class, args })
                }
                "null" => {
                    self.bump();
                    Ok(Expr::Lit(Lit::Null))
                }
                "true" | "false" => {
                    self.bump();
                    Ok(Expr::Lit(Lit::Bool(word == "true")))
                }
                _ => {
                    // A dotted name; stops before a segment that is a call
                    // (`.m(`) or `.class`, which the selector loop handles.
                    // A lone identifier followed by `(` is a receiverless
                    // call to a method of the enclosing class.
                    if self.is_punct(1, '(') {
                        let name = self.expect_ident()?;
                        let args = self.arg_list()?;
                        return Ok(Expr::Call { recv: None, name, args });
                    }
                    let mut parts = vec![self.expect_ident()?];
                    while self.is_punct(0, '.') {
                        let TokKind::Ident(next) = self.peek_at(1) else { break };
                        if next == "class" || self.is_punct(2, '(') {
                            break;
                        }
                        self.bump();
                        parts.push(self.expect_ident()?);
                    }
                    Ok(Expr::Name { parts })
                }
            },
            TokKind::Int(n) => {
                self.bump();
                Ok(Expr::Lit(Lit::Int(n)))
            }
            TokKind::Str(s) => {
                self.bump();
                Ok(Expr::Lit(Lit::Str(s)))
            }
            other => Err(self.err_here(&format!("expected expression, found {other}"))),
        }
    }

    /// Cast lookahead: `( Name (. Name)* ([])* )` followed by a token that
    /// can begin an operand (identifier, literal, `new`, `(`).
    fn looks_like_cast(&self) -> bool {
        let mut i = 1; // past `(`
        if !matches!(self.peek_at(i), TokKind::Ident(_)) {
            return false;
        }
        i += 1;
        while *self.peek_at(i) == TokKind::Punct('.') && matches!(self.peek_at(i + 1), TokKind::Ident(_)) {
            i += 2;
        }
        while *self.peek_at(i) == TokKind::Punct('[') && *self.peek_at(i + 1) == TokKind::Punct(']') {
            i += 2;
        }
        if *self.peek_at(i) != TokKind::Punct(')') {
            return false;
        }
        matches!(
            self.peek_at(i + 1),
            TokKind::Ident(_) | TokKind::Int(_) | TokKind::Str(_) | TokKind::Punct('(')
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(src: &str) -> Expr {
        parse_expr(src).unwrap()
    }

    #[test]
    fn dotted_names_stay_joined() {
        assert_eq!(expr("a.b.c"), Expr::Name { parts: vec!["a".into(), "b".into(), "c".into()] });
    }

    #[test]
    fn calls_split_names() {
        let e = expr("page.getActivePart()");
        assert_eq!(
            e,
            Expr::Call {
                recv: Some(Box::new(Expr::var("page"))),
                name: "getActivePart".into(),
                args: vec![],
            }
        );
    }

    #[test]
    fn static_call_keeps_dotted_receiver() {
        let e = expr("org.eclipse.JavaCore.create(file)");
        let Expr::Call { recv, name, args } = e else { panic!() };
        assert_eq!(*recv.unwrap(), Expr::Name { parts: vec!["org".into(), "eclipse".into(), "JavaCore".into()] });
        assert_eq!(name, "create");
        assert_eq!(args, vec![Expr::var("file")]);
    }

    #[test]
    fn cast_binds_whole_chain() {
        let e = expr("(IStructuredSelection) event.getSelection()");
        let Expr::Cast { ty, expr } = e else { panic!("not a cast") };
        assert_eq!(ty, TypeName::simple("IStructuredSelection"));
        assert!(matches!(*expr, Expr::Call { .. }));
    }

    #[test]
    fn parenthesized_cast_receiver() {
        let e = expr("((ITextEditor) part).getDocumentProvider()");
        let Expr::Call { recv, name, .. } = e else { panic!() };
        assert_eq!(name, "getDocumentProvider");
        assert!(matches!(*recv.unwrap(), Expr::Cast { .. }));
    }

    #[test]
    fn paren_expr_is_not_cast() {
        // `(x).m()` — after `)` comes `.`, so it is not a cast.
        let e = expr("(x).m()");
        let Expr::Call { recv, .. } = e else { panic!() };
        assert_eq!(*recv.unwrap(), Expr::var("x"));
    }

    #[test]
    fn array_cast() {
        let e = expr("(java.lang.String[]) xs");
        let Expr::Cast { ty, .. } = e else { panic!() };
        assert_eq!(ty, TypeName { parts: vec!["java".into(), "lang".into(), "String".into()], dims: 1 });
    }

    #[test]
    fn class_literal() {
        let e = expr("part.getAdapter(IDebugView.class)");
        let Expr::Call { args, .. } = e else { panic!() };
        assert_eq!(args, vec![Expr::ClassLit { ty: TypeName::simple("IDebugView") }]);
    }

    #[test]
    fn new_and_literals() {
        let e = expr(r#"new BufferedReader(new InputStreamReader(in), 42, "x", null, true)"#);
        let Expr::New { class, args } = e else { panic!() };
        assert_eq!(class, TypeName::simple("BufferedReader"));
        assert_eq!(args.len(), 5);
        assert_eq!(args[1], Expr::Lit(Lit::Int(42)));
        assert_eq!(args[2], Expr::Lit(Lit::Str("x".into())));
        assert_eq!(args[3], Expr::Lit(Lit::Null));
        assert_eq!(args[4], Expr::Lit(Lit::Bool(true)));
    }

    #[test]
    fn field_after_call() {
        let e = expr("f().data");
        assert!(matches!(e, Expr::Field { .. }));
    }

    #[test]
    fn figure4_method_parses() {
        let src = r#"
            package corpus;
            class Sample {
                protected IJavaObject getObjectContext() {
                    IWorkbenchPage page = JDIDebugUIPlugin.getActivePage();
                    IWorkbenchPart activePart = page.getActivePart();
                    IDebugView view = (IDebugView) activePart.getAdapter(IDebugView.class);
                    ISelection s = view.getViewer().getSelection();
                    IStructuredSelection sel = (IStructuredSelection) s;
                    Object selection = sel.getFirstElement();
                    JavaInspectExpression var = (JavaInspectExpression) selection;
                    return var;
                }
            }
        "#;
        let unit = parse_unit("fig4.mj", src).unwrap();
        assert_eq!(unit.package.as_deref(), Some("corpus"));
        let m = &unit.classes[0].methods[0];
        assert_eq!(m.name, "getObjectContext");
        assert_eq!(m.body.len(), 8);
        assert!(matches!(m.body[7], Stmt::Return(Some(_))));
    }

    #[test]
    fn constructors_and_modifiers() {
        let src = r#"
            class B extends A implements I, J {
                B(int size) { this0 = size; }
                static void run() { return; }
            }
        "#;
        let unit = parse_unit("b.mj", src).unwrap();
        let c = &unit.classes[0];
        assert_eq!(c.extends, Some(TypeName::simple("A")));
        assert_eq!(c.implements.len(), 2);
        assert!(c.methods[0].ret.is_none());
        assert!(c.methods[1].is_static());
    }

    #[test]
    fn assignment_vs_decl() {
        let src = r#"
            class C {
                void m() {
                    Foo x = make();
                    x = remake();
                    Foo y;
                    y = x;
                }
            }
        "#;
        let unit = parse_unit("c.mj", src).unwrap();
        let body = &unit.classes[0].methods[0].body;
        assert!(matches!(&body[0], Stmt::Local { init: Some(_), .. }));
        assert!(matches!(&body[1], Stmt::Assign { .. }));
        assert!(matches!(&body[2], Stmt::Local { init: None, .. }));
        assert!(matches!(&body[3], Stmt::Assign { .. }));
    }

    #[test]
    fn errors_have_positions() {
        let err = parse_unit("bad.mj", "class { }").unwrap_err();
        assert_eq!(err.file, "bad.mj");
        assert!(err.to_string().contains("expected identifier"));
        assert!(parse_expr("a +").is_err());
        assert!(parse_expr("a b").is_err());
        assert!(parse_unit("bad2.mj", "interface I {}").is_err());
    }

    #[test]
    fn expr_trailing_input_rejected() {
        assert!(parse_expr("f() g()").is_err());
    }

    #[test]
    fn binary_operator_precedence() {
        let e = expr("a != null && b.size() > 0 || c");
        // `||` binds loosest.
        let Expr::Binary { op: "||", lhs, .. } = e else { panic!("{e:?}") };
        let Expr::Binary { op: "&&", lhs: cmp, .. } = *lhs else { panic!() };
        assert!(matches!(*cmp, Expr::Binary { op: "!=", .. }));
    }

    #[test]
    fn cast_binds_tighter_than_comparison() {
        let e = expr("(IFile) r != null");
        let Expr::Binary { op: "!=", lhs, .. } = e else { panic!("{e:?}") };
        assert!(matches!(*lhs, Expr::Cast { .. }));
    }

    #[test]
    fn not_and_nested_parens() {
        let e = expr("!(a == b)");
        let Expr::Not { expr: inner } = e else { panic!() };
        assert!(matches!(*inner, Expr::Binary { op: "==", .. }));
    }

    #[test]
    fn if_else_and_while_parse() {
        let src = r#"
            class G {
                ISelection guarded(Viewer v) {
                    ISelection s = v.getSelection();
                    if (s == null) {
                        s = v.getSelection();
                    } else {
                        report(s);
                    }
                    while (s.isEmpty()) {
                        s = v.getSelection();
                    }
                    return s;
                }
            }
        "#;
        let unit = parse_unit("g.mj", src).unwrap();
        let body = &unit.classes[0].methods[0].body;
        assert!(matches!(&body[1], Stmt::If { els: Some(_), .. }));
        assert!(matches!(&body[2], Stmt::While { .. }));
    }
}
