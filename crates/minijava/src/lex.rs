//! A small Java-ish lexer, shared by the MiniJava parser and the `.api`
//! stub parser in `jungloid-apidef`.

/// A token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token payload.
    pub kind: TokKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Token payloads.
///
/// Keywords are not distinguished from identifiers; parsers match on the
/// identifier text, which keeps the lexer reusable across the two grammars.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A string literal (content, unescaped).
    Str(String),
    /// A single punctuation character: `(){}[];,.=`.
    Punct(char),
    /// A (possibly multi-character) operator: `== != < > <= >= && || ! + -`.
    Op(&'static str),
    /// End of input.
    Eof,
}

impl TokKind {
    /// The identifier text, if this is an identifier token.
    #[must_use]
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

impl std::fmt::Display for TokKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokKind::Ident(s) => write!(f, "`{s}`"),
            TokKind::Int(n) => write!(f, "integer `{n}`"),
            TokKind::Str(s) => write!(f, "string {s:?}"),
            TokKind::Punct(c) => write!(f, "`{c}`"),
            TokKind::Op(o) => write!(f, "`{o}`"),
            TokKind::Eof => f.write_str("end of input"),
        }
    }
}

/// An error produced while lexing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Explanation of the failure.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

const PUNCT: &str = "(){}[];,.";
const OPS: [&str; 11] = ["==", "!=", "<=", ">=", "&&", "||", "=", "<", ">", "!", "+"];

/// Lexes `src` into tokens, ending with a single [`TokKind::Eof`].
///
/// Skips `//` line comments and `/* ... */` block comments.
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated strings/comments or characters
/// outside the supported alphabet.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }

    loop {
        let (tline, tcol) = (line, col);
        let Some(&c) = chars.peek() else {
            tokens.push(Token { kind: TokKind::Eof, line, col });
            return Ok(tokens);
        };
        if c.is_whitespace() {
            bump!();
            continue;
        }
        if c == '/' {
            // Possible comment.
            bump!();
            match chars.peek() {
                Some('/') => {
                    while let Some(&c2) = chars.peek() {
                        if c2 == '\n' {
                            break;
                        }
                        bump!();
                    }
                    continue;
                }
                Some('*') => {
                    bump!();
                    let mut closed = false;
                    while let Some(c2) = bump!() {
                        if c2 == '*' && chars.peek() == Some(&'/') {
                            bump!();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return Err(LexError {
                            message: "unterminated block comment".to_owned(),
                            line: tline,
                            col: tcol,
                        });
                    }
                    continue;
                }
                _ => {
                    return Err(LexError {
                        message: "unexpected character `/`".to_owned(),
                        line: tline,
                        col: tcol,
                    })
                }
            }
        }
        if c == '"' {
            bump!();
            let mut s = String::new();
            loop {
                match bump!() {
                    Some('"') => break,
                    Some('\\') => match bump!() {
                        Some('n') => s.push('\n'),
                        Some('t') => s.push('\t'),
                        Some('"') => s.push('"'),
                        Some('\\') => s.push('\\'),
                        other => {
                            return Err(LexError {
                                message: format!("bad escape {other:?}"),
                                line,
                                col,
                            })
                        }
                    },
                    Some(c2) => s.push(c2),
                    None => {
                        return Err(LexError {
                            message: "unterminated string literal".to_owned(),
                            line: tline,
                            col: tcol,
                        })
                    }
                }
            }
            tokens.push(Token { kind: TokKind::Str(s), line: tline, col: tcol });
            continue;
        }
        if c.is_ascii_digit() {
            let mut n: i64 = 0;
            while let Some(&d) = chars.peek() {
                if let Some(v) = d.to_digit(10) {
                    n = n.checked_mul(10).and_then(|n| n.checked_add(i64::from(v))).ok_or(
                        LexError {
                            message: "integer literal overflows i64".to_owned(),
                            line: tline,
                            col: tcol,
                        },
                    )?;
                    bump!();
                } else {
                    break;
                }
            }
            tokens.push(Token { kind: TokKind::Int(n), line: tline, col: tcol });
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' || c == '$' {
            let mut s = String::new();
            while let Some(&d) = chars.peek() {
                if d.is_ascii_alphanumeric() || d == '_' || d == '$' {
                    s.push(d);
                    bump!();
                } else {
                    break;
                }
            }
            tokens.push(Token { kind: TokKind::Ident(s), line: tline, col: tcol });
            continue;
        }
        if PUNCT.contains(c) {
            bump!();
            tokens.push(Token { kind: TokKind::Punct(c), line: tline, col: tcol });
            continue;
        }
        if "=!<>&|+-".contains(c) {
            bump!();
            let mut two = String::from(c);
            if let Some(&next) = chars.peek() {
                two.push(next);
            }
            let op = OPS
                .iter()
                .find(|o| **o == two)
                .or_else(|| OPS.iter().find(|o| **o == c.to_string()))
                .copied();
            match op {
                Some(op) => {
                    if op.len() == 2 {
                        bump!();
                    }
                    if op == "=" {
                        tokens.push(Token { kind: TokKind::Punct('='), line: tline, col: tcol });
                    } else {
                        tokens.push(Token { kind: TokKind::Op(op), line: tline, col: tcol });
                    }
                    continue;
                }
                None if c == '-' => {
                    tokens.push(Token { kind: TokKind::Op("-"), line: tline, col: tcol });
                    continue;
                }
                None => {
                    return Err(LexError {
                        message: format!("unexpected character `{c}`"),
                        line: tline,
                        col: tcol,
                    })
                }
            }
        }
        return Err(LexError { message: format!("unexpected character `{c}`"), line, col });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_punct() {
        assert_eq!(
            kinds("a.b(c);"),
            vec![
                TokKind::Ident("a".into()),
                TokKind::Punct('.'),
                TokKind::Ident("b".into()),
                TokKind::Punct('('),
                TokKind::Ident("c".into()),
                TokKind::Punct(')'),
                TokKind::Punct(';'),
                TokKind::Eof,
            ]
        );
    }

    #[test]
    fn literals() {
        assert_eq!(
            kinds(r#""hi\n" 42"#),
            vec![TokKind::Str("hi\n".into()), TokKind::Int(42), TokKind::Eof]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a // line\n /* block\n still */ b"),
            vec![TokKind::Ident("a".into()), TokKind::Ident("b".into()), TokKind::Eof]
        );
    }

    #[test]
    fn positions_tracked() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn dollar_and_underscore_idents() {
        assert_eq!(
            kinds("_x $y a$b"),
            vec![
                TokKind::Ident("_x".into()),
                TokKind::Ident("$y".into()),
                TokKind::Ident("a$b".into()),
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a == b != c <= d >= e < f > g && h || i + j - k"),
            vec![
                TokKind::Ident("a".into()),
                TokKind::Op("=="),
                TokKind::Ident("b".into()),
                TokKind::Op("!="),
                TokKind::Ident("c".into()),
                TokKind::Op("<="),
                TokKind::Ident("d".into()),
                TokKind::Op(">="),
                TokKind::Ident("e".into()),
                TokKind::Op("<"),
                TokKind::Ident("f".into()),
                TokKind::Op(">"),
                TokKind::Ident("g".into()),
                TokKind::Op("&&"),
                TokKind::Ident("h".into()),
                TokKind::Op("||"),
                TokKind::Ident("i".into()),
                TokKind::Op("+"),
                TokKind::Ident("j".into()),
                TokKind::Op("-"),
                TokKind::Ident("k".into()),
                TokKind::Eof,
            ]
        );
        // `!i` splits into Op("!") + ident.
        assert_eq!(
            kinds("!x"),
            vec![TokKind::Op("!"), TokKind::Ident("x".into()), TokKind::Eof]
        );
        // `=` stays an assignment punct; `==` is an operator.
        assert_eq!(
            kinds("x = y == z"),
            vec![
                TokKind::Ident("x".into()),
                TokKind::Punct('='),
                TokKind::Ident("y".into()),
                TokKind::Op("=="),
                TokKind::Ident("z".into()),
                TokKind::Eof
            ]
        );
        // A lone `&` or `|` is rejected.
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("#").is_err());
        assert!(lex("/ x").is_err());
        assert!(lex("\"bad \\q\"").is_err());
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn error_display() {
        let err = lex("  #").unwrap_err();
        assert_eq!(err.to_string(), "1:3: unexpected character `#`");
    }
}
