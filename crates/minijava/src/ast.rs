//! The untyped MiniJava AST.
//!
//! Names are kept as raw strings; resolution against an API model happens in
//! `jungloid-dataflow`. In particular a dotted name like `a.b.c` is kept as
//! one [`Expr::Name`] node because without symbol tables it could be a local
//! plus field accesses, a static field of type `a.b`, or a package-qualified
//! type.

/// A source type name: dotted parts plus array dimensions.
///
/// `java.io.Reader[][]` is `parts = ["java","io","Reader"]`, `dims = 2`.
/// Primitives arrive as a single part (`["int"]`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TypeName {
    /// Dotted name components.
    pub parts: Vec<String>,
    /// Number of `[]` suffixes.
    pub dims: usize,
}

impl TypeName {
    /// A non-array type name from dotted text, e.g. `"java.io.Reader"`.
    #[must_use]
    pub fn simple(dotted: &str) -> Self {
        TypeName { parts: dotted.split('.').map(str::to_owned).collect(), dims: 0 }
    }

    /// Renders back to source form.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = self.parts.join(".");
        for _ in 0..self.dims {
            s.push_str("[]");
        }
        s
    }
}

impl std::fmt::Display for TypeName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Literals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Lit {
    /// An integer literal.
    Int(i64),
    /// A string literal.
    Str(String),
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
}

/// Expressions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A dotted name whose meaning (locals, fields, types, packages) is
    /// decided during resolution.
    Name {
        /// The dotted components.
        parts: Vec<String>,
    },
    /// A literal.
    Lit(Lit),
    /// `T.class`.
    ClassLit {
        /// The named type.
        ty: TypeName,
    },
    /// `new T(args)`.
    New {
        /// The constructed class.
        class: TypeName,
        /// Constructor arguments.
        args: Vec<Expr>,
    },
    /// `(T) expr`.
    Cast {
        /// Target type of the cast.
        ty: TypeName,
        /// The operand.
        expr: Box<Expr>,
    },
    /// `recv.name(args)` or a receiverless `name(args)` (a call to a
    /// method of the enclosing class). A [`Expr::Name`] receiver may later
    /// resolve to a type (static call) or a value (instance call).
    Call {
        /// Receiver expression; `None` for receiverless calls.
        recv: Option<Box<Expr>>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `recv.name` where the receiver is *not* a bare name (e.g.
    /// `f().field`); bare dotted chains stay inside [`Expr::Name`].
    Field {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Field name.
        name: String,
    },
    /// A binary operation (comparisons, logic, `+`/`-`). The miner does
    /// not follow data flow through these; they exist so realistic corpus
    /// code (null checks, guards) parses.
    Binary {
        /// Operator text (`==`, `!=`, `<`, `>`, `<=`, `>=`, `&&`, `||`,
        /// `+`, `-`).
        op: &'static str,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Logical negation `!e`.
    Not {
        /// The operand.
        expr: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for a one-part name.
    #[must_use]
    pub fn var(name: &str) -> Expr {
        Expr::Name { parts: vec![name.to_owned()] }
    }
}

/// Statements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `T x = init;` or `T x;`
    Local {
        /// Declared type.
        ty: TypeName,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// `x = value;`
    Assign {
        /// Assigned variable.
        name: String,
        /// Right-hand side.
        value: Expr,
    },
    /// `return;` / `return e;`
    Return(Option<Expr>),
    /// An expression statement.
    Expr(Expr),
    /// `if (cond) { … } else { … }` — branches are plain statement lists
    /// (the miner is flow-insensitive, so both arms pool into the same
    /// definition sets).
    If {
        /// The condition.
        cond: Expr,
        /// The then-branch.
        then: Vec<Stmt>,
        /// The optional else-branch.
        els: Option<Vec<Stmt>>,
    },
    /// `while (cond) { … }`.
    While {
        /// The condition.
        cond: Expr,
        /// The loop body.
        body: Vec<Stmt>,
    },
}

/// A method (or constructor, when `ret` is `None`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Method {
    /// Modifier keywords in source order (`static`, `public`, ...).
    pub mods: Vec<String>,
    /// Return type; `None` for constructors, `Some(void)` renders `void`.
    pub ret: Option<TypeName>,
    /// Method name (class name for constructors).
    pub name: String,
    /// `(type, name)` parameter pairs.
    pub params: Vec<(TypeName, String)>,
    /// Statement list.
    pub body: Vec<Stmt>,
}

impl Method {
    /// Whether the `static` modifier is present.
    #[must_use]
    pub fn is_static(&self) -> bool {
        self.mods.iter().any(|m| m == "static")
    }
}

/// A class declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Class {
    /// Simple name.
    pub name: String,
    /// `extends` clause.
    pub extends: Option<TypeName>,
    /// `implements` clause.
    pub implements: Vec<TypeName>,
    /// Methods and constructors.
    pub methods: Vec<Method>,
}

/// One parsed source file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Unit {
    /// File label used in diagnostics.
    pub file: String,
    /// `package` declaration, if any.
    pub package: Option<String>,
    /// Top-level classes.
    pub classes: Vec<Class>,
}
