//! Backward compatibility: a committed format-v1 `.pspk` fixture must
//! keep loading (and answering queries) forever, even though new
//! snapshots are written as v2. This pins the v1 decode path against
//! accidental drift in the shared section decoders.

use jungloid_apidef::{Api, ApiLoader};
use prospector_core::graph::JungloidGraph;
use prospector_core::{GraphConfig, Prospector};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/v1.pspk");

/// The same tiny `java.io` engine the crate's unit tests use — small
/// enough to commit its v1 encoding as a binary fixture.
fn tiny_engine() -> (Api, JungloidGraph) {
    let mut api = ApiLoader::with_prelude().finish().expect("prelude");
    api.class("java.io", "Reader").expect("declare");
    api.class("java.io", "InputStream").expect("declare");
    api.class("java.io", "InputStreamReader")
        .expect("declare")
        .extends("Reader")
        .expect("extends")
        .ctor(&["InputStream"])
        .expect("ctor");
    api.class("java.io", "BufferedReader")
        .expect("declare")
        .extends("Reader")
        .expect("extends")
        .ctor(&["Reader"])
        .expect("ctor")
        .method("readLine", &[], "String")
        .expect("method");
    let graph = JungloidGraph::from_api(&api, GraphConfig::default());
    (api, graph)
}

/// Run with `cargo test -p prospector-store --test compat -- --ignored`
/// to rebuild the committed fixture after an *intentional* v1 encoder
/// change (there should never be one).
#[test]
#[ignore = "regenerates the committed v1 fixture"]
fn regenerate_v1_fixture() {
    let (api, graph) = tiny_engine();
    let bytes = prospector_store::to_bytes_v1(&api, &graph, &[]);
    std::fs::write(FIXTURE, bytes).expect("fixture writes");
}

#[test]
fn committed_v1_fixture_still_loads_and_answers() {
    let bytes = std::fs::read(FIXTURE).expect("committed fixture exists");
    let m = prospector_store::manifest(&bytes).expect("fixture validates");
    assert_eq!(m.version, prospector_store::V1_FORMAT_VERSION);
    assert_eq!(m.sections.len(), 7);
    assert!(m.sections.iter().all(|s| s.pad_bytes == 0), "v1 has no padding");

    let snap = prospector_store::from_bytes(&bytes).expect("fixture loads");
    assert!(!snap.graph.csr().is_borrowed(), "v1 decodes into owned arrays");

    // The fixture matches today's tiny engine and today's v1 encoder —
    // both the semantic content and the exact bytes are pinned.
    let (api, graph) = tiny_engine();
    assert_eq!(snap.api.types().len(), api.types().len());
    assert_eq!(snap.graph.edge_count(), graph.edge_count());
    assert_eq!(
        prospector_store::to_bytes_v1(&snap.api, &snap.graph, &snap.mined_examples),
        bytes,
        "re-encoding the loaded v1 fixture must be byte-identical"
    );

    let warm = Prospector::from_parts(snap.api, snap.graph);
    let tin = warm.api().types().resolve("InputStream").expect("type resolves");
    let tout = warm.api().types().resolve("BufferedReader").expect("type resolves");
    let result = warm.query(tin, tout).expect("query");
    assert_eq!(
        result.suggestions[0].code,
        "new BufferedReader(new InputStreamReader(inputStream))"
    );
}
