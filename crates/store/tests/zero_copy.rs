//! The v2 zero-copy guarantee: an engine whose CSR arrays are *borrowed
//! views* into one snapshot buffer (owned read or mmap) answers queries
//! byte-identically to a fully-owned engine decoded from the v1 format —
//! same suggestion code, same ranking, same trace-attributed statistics.

use std::sync::Arc;

use prospector_core::{Prospector, SnapshotBuf};
use prospector_corpora::{build, BuildOptions};
use prospector_obs::trace::TraceId;

fn mined_engine() -> (Prospector, Vec<Vec<jungloid_apidef::ElemJungloid>>) {
    let built = build(&BuildOptions::default()).expect("bundled corpora assemble");
    let mined = built.mine_report.map(|r| r.examples).unwrap_or_default();
    (built.prospector, mined)
}

/// Table 1's flagship queries plus a mined-path-dependent one.
const QUERIES: [(&str, &str); 4] = [
    ("IFile", "ASTNode"),
    ("InputStream", "BufferedReader"),
    ("IWorkbench", "IEditorPart"),
    ("IWorkbenchPage", "IStructuredSelection"),
];

/// One full answer sheet for [`QUERIES`] — every observable a query
/// exposes, including the trace-attributed statistics. Each engine is
/// asked each query exactly once so cache counters are comparable.
fn answer_sheet(engine: &Prospector) -> Vec<impl PartialEq + std::fmt::Debug> {
    QUERIES
        .iter()
        .map(|&(tin_name, tout_name)| {
            let tin = engine.api().types().resolve(tin_name).expect("type resolves");
            let tout = engine.api().types().resolve(tout_name).expect("type resolves");
            let r = engine
                .query_with_trace(tin, tout, TraceId(0x5EED_0002))
                .expect("query");
            let codes: Vec<String> = r.suggestions.iter().map(|s| s.code.clone()).collect();
            (codes, r.stats, r.shortest, r.truncation.label())
        })
        .collect()
}

#[test]
fn borrowed_engine_answers_byte_identically_to_owned() {
    let (live, mined) = mined_engine();
    assert!(live.graph().mined_node_count() > 0, "engine must actually be mined");

    // Owned: the v1 format decodes every element into owned arrays.
    let v1 = prospector_store::to_bytes_v1(live.api(), live.graph(), &mined);
    let owned = prospector_store::from_bytes(&v1).expect("v1 loads");
    assert!(!owned.graph.csr().is_borrowed(), "v1 decode must be fully owned");

    // Borrowed: the v2 format hands out views into the snapshot buffer.
    let v2 = prospector_store::to_bytes(live.api(), live.graph(), &mined);
    let buf = Arc::new(SnapshotBuf::from_bytes(&v2));
    let (zero_copy, m) = prospector_store::from_buf(&buf).expect("v2 loads");
    assert_eq!(m.version, prospector_store::FORMAT_VERSION);
    if cfg!(target_endian = "little") {
        assert!(
            zero_copy.graph.csr().is_borrowed(),
            "v2 decode must borrow the CSR from the buffer on little-endian hosts"
        );
    }

    assert_eq!(owned.graph.csr().out_to(), zero_copy.graph.csr().out_to());
    assert_eq!(owned.graph.csr().out_elem(), zero_copy.graph.csr().out_elem());
    assert_eq!(owned.graph.csr().in_from(), zero_copy.graph.csr().in_from());
    assert_eq!(owned.graph.examples(), zero_copy.graph.examples());
    assert_eq!(owned.mined_examples, zero_copy.mined_examples);

    let owned_engine = Prospector::from_parts(owned.api, owned.graph);
    let borrowed_engine = Prospector::from_parts(zero_copy.api, zero_copy.graph);
    let live_sheet = answer_sheet(&live);
    let owned_sheet = answer_sheet(&owned_engine);
    let borrowed_sheet = answer_sheet(&borrowed_engine);
    assert_eq!(live_sheet, owned_sheet, "live vs owned: answers diverge");
    assert_eq!(owned_sheet, borrowed_sheet, "owned vs borrowed: answers diverge");
}

#[test]
fn mmap_load_matches_owned_read() {
    let (live, mined) = mined_engine();
    let dir = std::env::temp_dir().join("prospector-store-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("zero-copy.pspk");
    prospector_store::save_file(&path, live.api(), live.graph(), &mined).expect("snapshot saves");

    let (read_snap, read_manifest) = prospector_store::load_file(&path).expect("read loads");
    let (map_snap, map_manifest, mapped) = prospector_store::map_file(&path).expect("map loads");
    assert_eq!(read_manifest, map_manifest);
    if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
        assert!(mapped, "a v2 snapshot on linux must actually serve from the mapping");
    }

    assert_eq!(read_snap.graph.csr().out_to(), map_snap.graph.csr().out_to());
    assert_eq!(read_snap.graph.csr().out_elem(), map_snap.graph.csr().out_elem());

    // The staged path — validate once, thaw later — must agree too.
    let staged = prospector_store::MappedSnapshot::map(&path).expect("staged map validates");
    assert_eq!(staged.manifest(), &read_manifest);
    assert_eq!(staged.is_mapped(), mapped);
    let staged_snap = staged.thaw().expect("staged thaw decodes");
    assert_eq!(staged_snap.mined_examples, read_snap.mined_examples);

    let read_engine = Prospector::from_parts(read_snap.api, read_snap.graph);
    let map_engine = Prospector::from_parts(map_snap.api, map_snap.graph);
    let staged_engine = Prospector::from_parts(staged_snap.api, staged_snap.graph);
    let read_sheet = answer_sheet(&read_engine);
    let map_sheet = answer_sheet(&map_engine);
    let staged_sheet = answer_sheet(&staged_engine);
    assert_eq!(read_sheet, map_sheet, "read vs mmap: answers diverge");
    assert_eq!(map_sheet, staged_sheet, "mmap vs staged thaw: answers diverge");
    std::fs::remove_file(&path).ok();
}

#[test]
fn v2_sections_all_start_8_byte_aligned() {
    let (live, mined) = mined_engine();
    let bytes = prospector_store::to_bytes(live.api(), live.graph(), &mined);
    let m = prospector_store::manifest(&bytes).expect("pristine snapshot validates");
    for s in &m.sections {
        assert_eq!(
            s.offset % 8,
            0,
            "section `{}` payload starts at {} — not 8-byte aligned",
            s.name,
            s.offset
        );
        assert_eq!((s.bytes + u64::from(s.pad_bytes)) % 8, 0, "section `{}` pad", s.name);
    }
}
