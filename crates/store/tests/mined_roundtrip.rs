//! The tentpole guarantee: a mined + generalized engine snapshotted to
//! `.pspk` and reloaded answers queries *byte-identically* to the live
//! engine it was saved from — same suggestion code, same ranking, same
//! `TraceId`-attributed query statistics — because the loader restores
//! the frozen CSR arrays verbatim instead of rebuilding anything.

use prospector_core::Prospector;
use prospector_corpora::{build, BuildOptions};
use prospector_obs::trace::TraceId;

fn mined_engine() -> (Prospector, Vec<Vec<jungloid_apidef::ElemJungloid>>) {
    let built = build(&BuildOptions::default()).expect("bundled corpora assemble");
    let mined = built.mine_report.map(|r| r.examples).unwrap_or_default();
    (built.prospector, mined)
}

#[test]
fn reloaded_engine_answers_byte_identically() {
    let (live, mined) = mined_engine();
    assert!(live.graph().mined_node_count() > 0, "engine must actually be mined");
    assert!(!mined.is_empty());

    let bytes = prospector_store::to_bytes(live.api(), live.graph(), &mined);
    let snap = prospector_store::from_bytes(&bytes).expect("snapshot loads");
    assert_eq!(snap.graph.examples(), live.graph().examples());
    assert_eq!(snap.mined_examples, mined);
    let warm = Prospector::from_parts(snap.api, snap.graph);

    // A restored graph is a *different* graph as far as the result cache
    // is concerned: the loader stamps it with a fresh epoch, so entries
    // cached against the live engine can never be replayed against the
    // reloaded one (and vice versa), even inside one process.
    assert_ne!(
        warm.graph().epoch(),
        live.graph().epoch(),
        "a reloaded snapshot must take a fresh graph epoch"
    );

    // Table 1's flagship queries plus a mined-path-dependent one.
    let queries = [
        ("IFile", "ASTNode"),
        ("InputStream", "BufferedReader"),
        ("IWorkbench", "IEditorPart"),
        ("IWorkbenchPage", "IStructuredSelection"),
    ];
    for (tin_name, tout_name) in queries {
        let tin = live.api().types().resolve(tin_name).expect("type resolves");
        let tout = live.api().types().resolve(tout_name).expect("type resolves");
        // A fixed trace id on both sides makes the full QueryStats —
        // including its trace attribution — directly comparable.
        let id = TraceId(0x5EED_0001);
        let a = live.query_with_trace(tin, tout, id).expect("live query");
        let b = warm.query_with_trace(tin, tout, id).expect("warm query");

        let live_codes: Vec<&str> = a.suggestions.iter().map(|s| s.code.as_str()).collect();
        let warm_codes: Vec<&str> = b.suggestions.iter().map(|s| s.code.as_str()).collect();
        assert_eq!(live_codes, warm_codes, "{tin_name} -> {tout_name}: suggestions diverge");
        assert_eq!(a.stats, b.stats, "{tin_name} -> {tout_name}: query stats diverge");
        assert_eq!(a.shortest, b.shortest);
        assert_eq!(
            a.truncation.label(),
            b.truncation.label(),
            "{tin_name} -> {tout_name}: truncation diverges"
        );
    }
}

#[test]
fn save_and_load_round_trip_through_a_file() {
    let (live, mined) = mined_engine();
    let dir = std::env::temp_dir().join("prospector-store-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("roundtrip.pspk");

    let saved = prospector_store::save_file(&path, live.api(), live.graph(), &mined)
        .expect("snapshot saves");
    let (snap, loaded) = prospector_store::load_file(&path).expect("snapshot loads");
    assert_eq!(saved, loaded, "save and load must agree on the manifest");
    assert_eq!(snap.graph.node_count(), live.graph().node_count());
    assert_eq!(snap.graph.edge_count(), live.graph().edge_count());
    assert_eq!(snap.graph.csr().out_to(), live.graph().csr().out_to());
    assert_eq!(snap.graph.csr().in_from(), live.graph().csr().in_from());
    std::fs::remove_file(&path).ok();
}
