//! Corruption fuzzing: a `.pspk` snapshot must survive any mutilation
//! with a typed [`StoreError`] — never a panic, never a silent mis-load,
//! never an out-of-bounds read (the v2 loader hands out *borrowed* views
//! into the file bytes, so framing validation is the only thing between
//! a flipped bit and the query hot path).
//!
//! The mutations exercised here are the classes the format is built to
//! catch: truncation at (and around) every section boundary, a single
//! flipped byte in every header and payload, a flipped byte inside v2
//! alignment padding (which sits *outside* the CRC), and a stored CRC
//! that was wrongly computed over the padding.

use prospector_corpora::{build, BuildOptions};
use prospector_store::{from_bytes, manifest, Crc32, Manifest, StoreError, V1_FORMAT_VERSION};

/// Snapshot bytes for the full bundled engine — mined and generalized,
/// so all seven sections carry real payloads.
fn snapshot_bytes() -> (Vec<u8>, Vec<u8>) {
    let built = build(&BuildOptions::default()).expect("bundled corpora assemble");
    let mined = built.mine_report.map(|r| r.examples).unwrap_or_default();
    let api = built.prospector.api();
    let graph = built.prospector.graph();
    (
        prospector_store::to_bytes(api, graph, &mined),
        prospector_store::to_bytes_v1(api, graph, &mined),
    )
}

fn header_bytes(m: &Manifest) -> usize {
    if m.version == V1_FORMAT_VERSION {
        12
    } else {
        16
    }
}

fn frame_bytes(m: &Manifest) -> usize {
    if m.version == V1_FORMAT_VERSION {
        16
    } else {
        24
    }
}

/// Every interesting offset, derived from the validated manifest: the
/// file-header bytes, each section's frame start, payload start, payload
/// midpoint, payload end, and (v2) the end of its padding.
fn boundaries(bytes: &[u8]) -> Vec<usize> {
    let m = manifest(bytes).expect("pristine snapshot validates");
    let mut offsets: Vec<usize> = (0..=header_bytes(&m)).collect();
    for s in &m.sections {
        let payload_start = usize::try_from(s.offset).expect("fits");
        let payload_len = usize::try_from(s.bytes).expect("fits");
        let frame_start = payload_start - frame_bytes(&m);
        offsets.extend([
            frame_start,
            frame_start + 4,
            frame_start + 12,
            payload_start,
            payload_start + payload_len / 2,
            payload_start + payload_len,
            payload_start + payload_len + s.pad_bytes as usize,
        ]);
    }
    offsets.retain(|&o| o <= bytes.len());
    offsets.sort_unstable();
    offsets.dedup();
    offsets
}

fn assert_truncations_are_typed(bytes: &[u8]) {
    for cut in boundaries(bytes) {
        if cut == bytes.len() {
            continue; // not a truncation
        }
        let err = from_bytes(&bytes[..cut])
            .err()
            .unwrap_or_else(|| panic!("snapshot cut to {cut} bytes must not load"));
        // The mutation must surface as a framing error, not a mis-parse
        // deep inside a decoder.
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. }
                    | StoreError::Corrupt { .. }
                    | StoreError::BadMagic { .. }
                    | StoreError::UnsupportedVersion { .. }
            ),
            "cut at {cut}: unexpected error {err:?}"
        );
    }
}

#[test]
fn truncation_at_every_boundary_is_a_typed_error() {
    let (v2, v1) = snapshot_bytes();
    assert_truncations_are_typed(&v2);
    assert_truncations_are_typed(&v1);
}

fn assert_flips_are_detected(bytes: &[u8]) {
    let m = manifest(bytes).expect("pristine snapshot validates");
    for s in &m.sections {
        let payload_start = usize::try_from(s.offset).expect("fits");
        let payload_len = usize::try_from(s.bytes).expect("fits");
        // One flip in the section frame (its tag byte) and one in the
        // middle of its payload.
        let targets = [payload_start - frame_bytes(&m), payload_start + payload_len / 2];
        for &at in &targets {
            let mut mutated = bytes.to_vec();
            mutated[at] ^= 0x40;
            match from_bytes(&mutated) {
                Ok(_) => panic!("flip at byte {at} (section `{}`) loaded anyway", s.name),
                Err(
                    StoreError::ChecksumMismatch { .. }
                    | StoreError::Corrupt { .. }
                    | StoreError::Truncated { .. },
                ) => {}
                Err(other) => {
                    panic!("flip at byte {at} (section `{}`): unexpected error {other:?}", s.name)
                }
            }
        }
    }
}

#[test]
fn one_flipped_byte_per_section_is_detected() {
    let (v2, v1) = snapshot_bytes();
    assert_flips_are_detected(&v2);
    assert_flips_are_detected(&v1);
}

#[test]
fn flips_in_the_file_header_are_detected() {
    let (bytes, _) = snapshot_bytes();
    for at in 0..16 {
        let mut mutated = bytes.clone();
        mutated[at] ^= 0x01;
        assert!(
            from_bytes(&mutated).is_err(),
            "header flip at byte {at} must not load"
        );
    }
}

fn assert_payload_flips_blame_their_section(bytes: &[u8]) {
    // A flip strictly inside a payload (headers untouched) must be caught
    // by that section's CRC and blamed on it by name.
    let m = manifest(bytes).expect("pristine snapshot validates");
    for s in &m.sections {
        let payload_start = usize::try_from(s.offset).expect("fits");
        let payload_len = usize::try_from(s.bytes).expect("fits");
        if payload_len > 0 {
            let mut mutated = bytes.to_vec();
            mutated[payload_start + payload_len / 2] ^= 0x10;
            match from_bytes(&mutated) {
                Err(StoreError::ChecksumMismatch { section, .. }) => {
                    assert_eq!(section, s.name);
                }
                other => panic!(
                    "payload flip in `{}`: expected checksum mismatch, got {other:?}",
                    s.name
                ),
            }
        }
    }
}

#[test]
fn payload_flips_are_checksum_mismatches_naming_the_section() {
    let (v2, v1) = snapshot_bytes();
    assert_payload_flips_blame_their_section(&v2);
    assert_payload_flips_blame_their_section(&v1);
}

#[test]
fn flipped_padding_byte_is_corrupt_naming_the_section() {
    // v2 alignment padding sits outside the CRC, so the loader checks it
    // is all-zero explicitly — a flipped pad byte must be a Corrupt
    // blaming the right section, not a silent load into borrowed views.
    let (bytes, _) = snapshot_bytes();
    let m = manifest(&bytes).expect("pristine snapshot validates");
    let mut padded = 0;
    for s in &m.sections {
        if s.pad_bytes == 0 {
            continue;
        }
        padded += 1;
        for k in 0..s.pad_bytes as usize {
            let at = usize::try_from(s.offset + s.bytes).expect("fits") + k;
            let mut mutated = bytes.clone();
            mutated[at] = 0xAB;
            match from_bytes(&mutated) {
                Err(StoreError::Corrupt { section, detail }) => {
                    assert_eq!(section, s.name);
                    assert!(detail.contains("padding"), "detail should mention padding: {detail}");
                }
                other => panic!(
                    "pad flip in `{}` byte {k}: expected Corrupt, got {other:?}",
                    s.name
                ),
            }
        }
    }
    assert!(padded > 0, "fixture has no padded sections; the test proved nothing");
}

#[test]
fn crc_computed_over_padding_is_a_checksum_mismatch() {
    // Simulates a buggy writer that folded the zero padding into the
    // CRC. The stored checksum then disagrees with the spec's
    // tag+payload recipe and the loader must reject the section by name.
    let (bytes, _) = snapshot_bytes();
    let m = manifest(&bytes).expect("pristine snapshot validates");
    let mut padded = 0;
    for s in &m.sections {
        if s.pad_bytes == 0 {
            continue;
        }
        padded += 1;
        let payload_start = usize::try_from(s.offset).expect("fits");
        let payload_len = usize::try_from(s.bytes).expect("fits");
        let frame_start = payload_start - 24;
        let mut crc = Crc32::new();
        crc.update(&bytes[frame_start..frame_start + 4]); // tag
        crc.update(&bytes[payload_start..payload_start + payload_len + s.pad_bytes as usize]);
        let wrong = crc.finish();
        let mut mutated = bytes.clone();
        mutated[frame_start + 16..frame_start + 20].copy_from_slice(&wrong.to_le_bytes());
        match from_bytes(&mutated) {
            Err(StoreError::ChecksumMismatch { section, expected, .. }) => {
                assert_eq!(section, s.name);
                assert_eq!(expected, wrong);
            }
            other => panic!(
                "padded CRC in `{}`: expected checksum mismatch, got {other:?}",
                s.name
            ),
        }
    }
    assert!(padded > 0, "fixture has no padded sections; the test proved nothing");
}
