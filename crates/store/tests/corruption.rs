//! Corruption fuzzing: a `.pspk` snapshot must survive any mutilation
//! with a typed [`StoreError`] — never a panic, never a silent mis-load.
//!
//! The mutations exercised here are the two classes the format is built
//! to catch: truncation at (and around) every section boundary, and a
//! single flipped byte in every section's header and payload.

use prospector_corpora::{build, BuildOptions};
use prospector_store::{from_bytes, manifest, StoreError};

/// Snapshot bytes for the full bundled engine — mined and generalized,
/// so all seven sections carry real payloads.
fn snapshot_bytes() -> Vec<u8> {
    let built = build(&BuildOptions::default()).expect("bundled corpora assemble");
    let mined = built.mine_report.map(|r| r.examples).unwrap_or_default();
    prospector_store::to_bytes(built.prospector.api(), built.prospector.graph(), &mined)
}

/// Every interesting offset: the file-header bytes, each section's
/// header start, payload start, payload midpoint, and payload end.
fn boundaries(bytes: &[u8]) -> Vec<usize> {
    let m = manifest(bytes).expect("pristine snapshot validates");
    let mut offsets: Vec<usize> = (0..=12).collect();
    let mut pos = 12usize;
    for s in &m.sections {
        let payload_start = pos + 16;
        let payload_len = usize::try_from(s.bytes).expect("fits");
        offsets.extend([
            pos,
            pos + 4,
            pos + 12,
            payload_start,
            payload_start + payload_len / 2,
            payload_start + payload_len,
        ]);
        pos = payload_start + payload_len;
    }
    offsets.retain(|&o| o <= bytes.len());
    offsets.sort_unstable();
    offsets.dedup();
    offsets
}

#[test]
fn truncation_at_every_boundary_is_a_typed_error() {
    let bytes = snapshot_bytes();
    for cut in boundaries(&bytes) {
        if cut == bytes.len() {
            continue; // not a truncation
        }
        let err = from_bytes(&bytes[..cut])
            .err()
            .unwrap_or_else(|| panic!("snapshot cut to {cut} bytes must not load"));
        // The mutation must surface as a framing error, not a mis-parse
        // deep inside a decoder.
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. }
                    | StoreError::Corrupt { .. }
                    | StoreError::BadMagic { .. }
                    | StoreError::UnsupportedVersion { .. }
            ),
            "cut at {cut}: unexpected error {err:?}"
        );
    }
}

#[test]
fn one_flipped_byte_per_section_is_detected() {
    let bytes = snapshot_bytes();
    let m = manifest(&bytes).expect("pristine snapshot validates");
    let mut pos = 12usize;
    for s in &m.sections {
        let payload_len = usize::try_from(s.bytes).expect("fits");
        // One flip in the section header (its tag byte) and one in the
        // middle of its payload.
        let targets = [pos, pos + 16 + payload_len / 2];
        for &at in &targets {
            let mut mutated = bytes.clone();
            mutated[at] ^= 0x40;
            match from_bytes(&mutated) {
                Ok(_) => panic!("flip at byte {at} (section `{}`) loaded anyway", s.name),
                Err(
                    StoreError::ChecksumMismatch { .. }
                    | StoreError::Corrupt { .. }
                    | StoreError::Truncated { .. },
                ) => {}
                Err(other) => {
                    panic!("flip at byte {at} (section `{}`): unexpected error {other:?}", s.name)
                }
            }
        }
        pos += 16 + payload_len;
    }
}

#[test]
fn flips_in_the_file_header_are_detected() {
    let bytes = snapshot_bytes();
    for at in 0..12 {
        let mut mutated = bytes.clone();
        mutated[at] ^= 0x01;
        assert!(
            from_bytes(&mutated).is_err(),
            "header flip at byte {at} must not load"
        );
    }
}

#[test]
fn payload_flips_are_checksum_mismatches_naming_the_section() {
    // A flip strictly inside a payload (headers untouched) must be caught
    // by that section's CRC and blamed on it by name.
    let bytes = snapshot_bytes();
    let m = manifest(&bytes).expect("pristine snapshot validates");
    let mut pos = 12usize;
    for s in &m.sections {
        let payload_len = usize::try_from(s.bytes).expect("fits");
        if payload_len > 0 {
            let mut mutated = bytes.clone();
            mutated[pos + 16 + payload_len / 2] ^= 0x10;
            match from_bytes(&mutated) {
                Err(StoreError::ChecksumMismatch { section, .. }) => {
                    assert_eq!(section, s.name);
                }
                other => panic!("payload flip in `{}`: expected checksum mismatch, got {other:?}", s.name),
            }
        }
        pos += 16 + payload_len;
    }
}
