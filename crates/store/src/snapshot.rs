//! The `.pspk` section layout: encoding a mined engine to bytes and
//! validating/decoding it back.
//!
//! # Format v2 (written by this build)
//!
//! All integers little-endian. The file header is 16 bytes:
//!
//! ```text
//! magic "PSPK" | version u32 | section_count u32 | reserved u32 (zero)
//! ```
//!
//! then, per section, in fixed order, a 24-byte frame followed by the
//! payload and zero padding:
//!
//! ```text
//! tag u32 | pad u32 | payload_len u64 | crc32 u32 | reserved u32 (zero)
//! payload | pad zero bytes
//! ```
//!
//! `pad = (8 - payload_len % 8) % 8`, so payload + padding is always a
//! multiple of 8. Header (16) and frame (24) sizes are multiples of 8
//! too, which makes **every payload start 8-byte-aligned in the file**.
//! That alignment is the point of v2: the hot sections (CSR arrays,
//! string pool, example quads) are flat little-endian arrays a loader can
//! hand out as `&[u32]`/`&[u8]` views borrowed directly from one aligned
//! read or an mmap'd region — validate the CRCs once, copy nothing. The
//! CRC32 covers tag bytes + payload (padding excluded); padding must be
//! zero and is checked separately, so a flipped pad byte is a typed
//! [`StoreError::Corrupt`] naming the section.
//!
//! | tag | section    | v2 payload layout                                   |
//! |-----|------------|-----------------------------------------------------|
//! | 1   | `strings`  | count u64, (count+1)×u32 byte offsets, UTF-8 blob   |
//! | 2   | `types`    | v1 byte-wise encoding (cold; decoded into arenas)   |
//! | 3   | `members`  | v1 byte-wise encoding (cold; decoded into arenas)   |
//! | 4   | `graph`    | v1 byte-wise encoding (config, counts, mined bases) |
//! | 5   | `csr`      | counts, offset/endpoint u32 arrays, packed 4×u32    |
//! |     |            | jungloid quads, then the u8 cost arrays last        |
//! | 6   | `examples` | seq/elem counts, (count+1)×u32 offsets, 4×u32 quads |
//! | 7   | `suffixes` | same layout as `examples`                           |
//!
//! The loader reconstructs [`CsrAdjacency`] from section 5 as borrowed
//! slabs — no rebuild, no per-element copies — and
//! [`JungloidGraph::from_snapshot`] keeps the graph frozen on that CSR,
//! so a warm-started engine is byte-identical to the one that was saved.
//!
//! # Format v1 (read compatibility)
//!
//! v1 files (12-byte header, 16-byte section frames, no padding,
//! byte-wise payloads everywhere) are still decoded in full; versions
//! above [`FORMAT_VERSION`] are a typed
//! [`StoreError::UnsupportedVersion`]. [`to_bytes_v1`] keeps the v1
//! encoder for fixtures and downgrade escapes.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use jungloid_apidef::{
    Api, ElemJungloid, FieldDef, FieldId, InputSlot, MethodDef, MethodId, Visibility,
};
use jungloid_typesys::{PackageId, Prim, RawSlot, RawSlotView, TyId, TypeKind, TypeTable};
use prospector_core::graph::{CsrAdjacency, JungloidGraph, NodeId};
use prospector_core::slab::{decode_quad, encode_quad, ElemSeq, Slab, SnapshotBuf};
use prospector_core::GraphConfig;

use crate::crc32::Crc32;
use crate::error::StoreError;
use crate::rw::{Reader, Writer};

/// The four magic bytes every snapshot starts with.
pub const MAGIC: [u8; 4] = *b"PSPK";

/// Format version written by this build. Reads accept this version and
/// every older one; anything newer is [`StoreError::UnsupportedVersion`].
pub const FORMAT_VERSION: u32 = 2;

/// The original byte-wise format, still readable (and writable via
/// [`to_bytes_v1`]).
pub const V1_FORMAT_VERSION: u32 = 1;

/// `(tag, name)` of every section, in file order (same for v1 and v2).
const SECTIONS: [(u32, &str); 7] = [
    (1, "strings"),
    (2, "types"),
    (3, "members"),
    (4, "graph"),
    (5, "csr"),
    (6, "examples"),
    (7, "suffixes"),
];

const V1_HEADER_BYTES: usize = 12;
const V1_SECTION_HEADER_BYTES: usize = 16;
const V2_HEADER_BYTES: usize = 16;
const V2_SECTION_HEADER_BYTES: usize = 24;

/// A fully decoded snapshot: everything needed to warm-start an engine.
#[derive(Debug)]
pub struct Snapshot {
    /// The API model (type table + members).
    pub api: Api,
    /// The jungloid graph, CSR reconstructed verbatim (no rebuild). On
    /// the v2 path its arrays borrow from the snapshot buffer.
    pub graph: JungloidGraph,
    /// The raw mined example jungloids the engine was built from, kept
    /// for provenance/inspection (the generalized splices live in the
    /// graph itself).
    pub mined_examples: Vec<Vec<ElemJungloid>>,
}

/// Size/checksum breakdown of one stored section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section name (matches the table in the module docs).
    pub name: &'static str,
    /// Payload bytes (headers and padding excluded).
    pub bytes: u64,
    /// Stored (and verified) CRC32 over tag + payload.
    pub crc32: u32,
    /// File offset where the payload starts. A multiple of 8 in v2 — the
    /// alignment that makes zero-copy views possible.
    pub offset: u64,
    /// Zero bytes appended after the payload (always 0 in v1).
    pub pad_bytes: u32,
}

/// What `index inspect` prints: the validated file structure, without
/// necessarily decoding the payloads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Format version found in the header.
    pub version: u32,
    /// Whole-file size in bytes.
    pub total_bytes: u64,
    /// Per-section breakdown, in file order.
    pub sections: Vec<SectionInfo>,
}

/// Whether `bytes` look like a binary snapshot (magic sniff only) — the
/// CLI uses this to route `--index` files between this format and the
/// JSON debug path.
#[must_use]
pub fn is_snapshot(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == MAGIC
}

// --- encoding -----------------------------------------------------------

/// Deduplicating string pool; all other sections store `u32` refs into it.
#[derive(Default)]
struct StringPool {
    strings: Vec<String>,
    index: HashMap<String, u32>,
}

impl StringPool {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = u32::try_from(self.strings.len()).expect("string pool fits u32");
        self.strings.push(s.to_owned());
        self.index.insert(s.to_owned(), id);
        id
    }
}

fn encode_elem(w: &mut Writer, elem: &ElemJungloid) {
    match *elem {
        ElemJungloid::FieldAccess { field } => {
            w.u8(0);
            w.index(field.index());
        }
        ElemJungloid::Call { method, input } => {
            w.u8(1);
            w.index(method.index());
            match input {
                None => w.u8(0),
                Some(InputSlot::Receiver) => w.u8(1),
                Some(InputSlot::Arg(i)) => {
                    w.u8(2);
                    w.index(i);
                }
            }
        }
        ElemJungloid::Widen { from, to } => {
            w.u8(2);
            w.index(from.index());
            w.index(to.index());
        }
        ElemJungloid::Downcast { from, to } => {
            w.u8(3);
            w.index(from.index());
            w.index(to.index());
        }
    }
}

fn encode_examples_v1(examples: &[Vec<ElemJungloid>]) -> Vec<u8> {
    let mut w = Writer::new();
    w.index(examples.len());
    for steps in examples {
        w.index(steps.len());
        for step in steps {
            encode_elem(&mut w, step);
        }
    }
    w.into_bytes()
}

fn encode_types(types: &TypeTable, pool: &mut StringPool) -> Vec<u8> {
    let mut w = Writer::new();
    w.index(types.package_names().len());
    for p in types.package_names() {
        w.u32(pool.intern(p));
    }
    let slots = types.raw_slot_views();
    w.index(slots.len());
    for slot in slots {
        match slot {
            RawSlotView::Void => w.u8(0),
            RawSlotView::Null => w.u8(1),
            RawSlotView::Prim(p) => {
                w.u8(2);
                w.u8(u8::try_from(Prim::ALL.iter().position(|q| *q == p).expect("listed"))
                    .expect("8 prims"));
            }
            RawSlotView::Decl { simple, package, kind, superclass, interfaces } => {
                w.u8(3);
                w.u32(pool.intern(simple));
                w.index(package.index());
                w.u8(match kind {
                    TypeKind::Class => 0,
                    TypeKind::Interface => 1,
                });
                w.u32(superclass.map_or(u32::MAX, |s| {
                    u32::try_from(s.index()).expect("arena fits u32")
                }));
                w.index(interfaces.len());
                for i in interfaces {
                    w.index(i.index());
                }
            }
            RawSlotView::Array { elem } => {
                w.u8(4);
                w.index(elem.index());
            }
        }
    }
    w.into_bytes()
}

fn encode_visibility(v: Visibility) -> u8 {
    match v {
        Visibility::Public => 0,
        Visibility::Protected => 1,
        Visibility::Private => 2,
    }
}

fn encode_members(api: &Api, pool: &mut StringPool) -> Vec<u8> {
    let mut w = Writer::new();
    w.index(api.method_count());
    for m in api.method_ids() {
        let def = api.method(m);
        w.u32(pool.intern(&def.name));
        w.index(def.declaring.index());
        w.index(def.params.len());
        for p in &def.params {
            w.index(p.index());
        }
        w.index(def.param_names.len());
        for name in &def.param_names {
            match name {
                None => w.u8(0),
                Some(n) => {
                    w.u8(1);
                    w.u32(pool.intern(n));
                }
            }
        }
        w.index(def.ret.index());
        w.u8(encode_visibility(def.visibility));
        w.u8(u8::from(def.is_static));
        w.u8(u8::from(def.is_constructor));
    }
    w.index(api.field_count());
    for f in api.field_ids() {
        let def = api.field(f);
        w.u32(pool.intern(&def.name));
        w.index(def.declaring.index());
        w.index(def.ty.index());
        w.u8(encode_visibility(def.visibility));
        w.u8(u8::from(def.is_static));
    }
    w.into_bytes()
}

fn encode_graph_meta(graph: &JungloidGraph) -> Vec<u8> {
    let mut w = Writer::new();
    let config = graph.config();
    w.u8(u8::from(config.include_protected));
    w.u8(u8::from(config.restrict_weak_params));
    let ty_count = graph.node_count() - graph.mined_node_count();
    w.index(ty_count);
    w.index(graph.mined_node_count());
    for i in 0..graph.mined_node_count() {
        let base = graph.base_ty(NodeId::Mined(u32::try_from(i).expect("mined fits u32")));
        w.index(base.index());
    }
    w.u64(graph.edge_count() as u64);
    w.into_bytes()
}

fn encode_csr_v1(csr: &CsrAdjacency) -> Vec<u8> {
    let mut w = Writer::new();
    w.index(csr.node_count());
    for &off in csr.out_offsets() {
        w.u32(off);
    }
    w.u64(csr.edge_count() as u64);
    for &to in csr.out_to() {
        w.u32(to);
    }
    for &cost in csr.out_cost() {
        w.u8(cost);
    }
    for elem in csr.out_elem().iter() {
        encode_elem(&mut w, &elem);
    }
    for &off in csr.in_offsets() {
        w.u32(off);
    }
    for &from in csr.in_from() {
        w.u32(from);
    }
    for &cost in csr.in_cost() {
        w.u8(cost);
    }
    w.into_bytes()
}

fn encode_strings_v1(pool: &StringPool) -> Vec<u8> {
    let mut w = Writer::new();
    w.index(pool.strings.len());
    for s in &pool.strings {
        w.index(s.len());
        w.bytes(s.as_bytes());
    }
    w.into_bytes()
}

/// v2 strings: `count u64 | (count+1)×u32 cumulative byte offsets |
/// UTF-8 blob`. Offsets let a borrowed view slice any string in O(1).
fn encode_strings_v2(pool: &StringPool) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(pool.strings.len() as u64);
    let mut acc: u32 = 0;
    w.u32(acc);
    for s in &pool.strings {
        acc = acc
            .checked_add(u32::try_from(s.len()).expect("string fits u32"))
            .expect("string blob fits u32");
        w.u32(acc);
    }
    for s in &pool.strings {
        w.bytes(s.as_bytes());
    }
    w.into_bytes()
}

/// v2 CSR: `node_count u64 | edge_count u64`, then the u32 arrays
/// (forward offsets, forward targets, packed 4×u32 jungloid quads,
/// reverse offsets, reverse sources), then the two u8 cost arrays
/// *last* so every u32 array stays 4-byte-aligned without internal
/// padding.
fn encode_csr_v2(csr: &CsrAdjacency) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(csr.node_count() as u64);
    w.u64(csr.edge_count() as u64);
    for &off in csr.out_offsets() {
        w.u32(off);
    }
    for &to in csr.out_to() {
        w.u32(to);
    }
    for i in 0..csr.edge_count() {
        for word in encode_quad(csr.out_elem().get(i)) {
            w.u32(word);
        }
    }
    for &off in csr.in_offsets() {
        w.u32(off);
    }
    for &from in csr.in_from() {
        w.u32(from);
    }
    for &cost in csr.out_cost() {
        w.u8(cost);
    }
    for &cost in csr.in_cost() {
        w.u8(cost);
    }
    w.into_bytes()
}

/// v2 examples/suffixes: `seq_count u64 | total_elems u64 |
/// (seq_count+1)×u32 cumulative element offsets | total_elems packed
/// 4×u32 quads`.
fn encode_examples_v2(examples: &[Vec<ElemJungloid>]) -> Vec<u8> {
    let total: usize = examples.iter().map(Vec::len).sum();
    let mut w = Writer::new();
    w.u64(examples.len() as u64);
    w.u64(total as u64);
    let mut acc: u32 = 0;
    w.u32(acc);
    for steps in examples {
        acc = acc
            .checked_add(u32::try_from(steps.len()).expect("example fits u32"))
            .expect("example arena fits u32");
        w.u32(acc);
    }
    for steps in examples {
        for &step in steps {
            for word in encode_quad(step) {
                w.u32(word);
            }
        }
    }
    w.into_bytes()
}

fn emit_section_v1(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    let mut crc = Crc32::new();
    crc.update(&tag.to_le_bytes());
    crc.update(payload);
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out.extend_from_slice(payload);
}

/// Padding bytes needed after a `len`-byte payload to reach the next
/// 8-byte boundary.
#[must_use]
pub fn pad_for(len: usize) -> usize {
    (8 - len % 8) % 8
}

fn emit_section_v2(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    let pad = pad_for(payload.len());
    let mut crc = Crc32::new();
    crc.update(&tag.to_le_bytes());
    crc.update(payload);
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&u32::try_from(pad).expect("pad < 8").to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&[0u8; 8][..pad]);
}

/// Encodes a mined engine (API + graph + raw mined examples) to format-v2
/// snapshot bytes.
#[must_use]
pub fn to_bytes(api: &Api, graph: &JungloidGraph, mined_examples: &[Vec<ElemJungloid>]) -> Vec<u8> {
    let mut pool = StringPool::default();
    // Sections that intern strings are encoded first; the pool itself is
    // then emitted as section 1, ahead of everything that references it.
    let types = encode_types(api.types(), &mut pool);
    let members = encode_members(api, &mut pool);
    let graph_meta = encode_graph_meta(graph);
    let csr = encode_csr_v2(graph.csr());
    let examples = encode_examples_v2(mined_examples);
    let suffixes = encode_examples_v2(graph.examples());
    let strings = encode_strings_v2(&pool);

    let payloads = [&strings, &types, &members, &graph_meta, &csr, &examples, &suffixes];
    let total = V2_HEADER_BYTES
        + payloads
            .iter()
            .map(|p| V2_SECTION_HEADER_BYTES + p.len() + pad_for(p.len()))
            .sum::<usize>();
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&u32::try_from(SECTIONS.len()).expect("few sections").to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    for ((tag, _), payload) in SECTIONS.iter().zip(payloads) {
        emit_section_v2(&mut out, *tag, payload);
    }
    out
}

/// Encodes to the legacy v1 layout (byte-wise payloads, unaligned, no
/// padding). Kept for backward-compat fixtures; new snapshots should use
/// [`to_bytes`].
#[must_use]
pub fn to_bytes_v1(
    api: &Api,
    graph: &JungloidGraph,
    mined_examples: &[Vec<ElemJungloid>],
) -> Vec<u8> {
    let mut pool = StringPool::default();
    let types = encode_types(api.types(), &mut pool);
    let members = encode_members(api, &mut pool);
    let graph_meta = encode_graph_meta(graph);
    let csr = encode_csr_v1(graph.csr());
    let examples = encode_examples_v1(mined_examples);
    let suffixes = encode_examples_v1(graph.examples());
    let strings = encode_strings_v1(&pool);

    let payloads = [&strings, &types, &members, &graph_meta, &csr, &examples, &suffixes];
    let total = V1_HEADER_BYTES
        + payloads.iter().map(|p| V1_SECTION_HEADER_BYTES + p.len()).sum::<usize>();
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&V1_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&u32::try_from(SECTIONS.len()).expect("few sections").to_le_bytes());
    for ((tag, _), payload) in SECTIONS.iter().zip(payloads) {
        emit_section_v1(&mut out, *tag, payload);
    }
    out
}

// --- walking (framing validation) ---------------------------------------

/// Validates the header and every section frame (tag order, length
/// bounds, padding, CRC32) for whichever format version the file
/// declares, returning the manifest. Payload *contents* are not decoded.
fn walk(bytes: &[u8]) -> Result<Manifest, StoreError> {
    if bytes.len() < 8 {
        return Err(StoreError::Truncated { context: "header", offset: bytes.len() });
    }
    if bytes[..4] != MAGIC {
        return Err(StoreError::BadMagic { found: bytes[..4].try_into().expect("4 bytes") });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    match version {
        V1_FORMAT_VERSION => walk_v1(bytes),
        FORMAT_VERSION => walk_v2(bytes),
        _ => Err(StoreError::UnsupportedVersion { found: version, supported: FORMAT_VERSION }),
    }
}

fn check_section_count(bytes: &[u8]) -> Result<(), StoreError> {
    let count = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if count as usize != SECTIONS.len() {
        return Err(StoreError::Corrupt {
            section: "header",
            detail: format!("{count} sections recorded, this format has {}", SECTIONS.len()),
        });
    }
    Ok(())
}

fn walk_v1(bytes: &[u8]) -> Result<Manifest, StoreError> {
    if bytes.len() < V1_HEADER_BYTES {
        return Err(StoreError::Truncated { context: "header", offset: bytes.len() });
    }
    check_section_count(bytes)?;
    let mut infos = Vec::with_capacity(SECTIONS.len());
    let mut pos = V1_HEADER_BYTES;
    for &(expected_tag, name) in &SECTIONS {
        let Some(header) = bytes.get(pos..pos + V1_SECTION_HEADER_BYTES) else {
            return Err(StoreError::Truncated { context: name, offset: pos });
        };
        let tag = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let len = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        let stored_crc = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
        if tag != expected_tag {
            return Err(StoreError::Corrupt {
                section: name,
                detail: format!("expected section tag {expected_tag}, found {tag}"),
            });
        }
        let len = usize::try_from(len).map_err(|_| StoreError::Corrupt {
            section: name,
            detail: format!("section length {len} exceeds addressable memory"),
        })?;
        let start = pos + V1_SECTION_HEADER_BYTES;
        let Some(payload) = start.checked_add(len).and_then(|end| bytes.get(start..end)) else {
            return Err(StoreError::Truncated { context: name, offset: bytes.len() - start });
        };
        verify_crc(name, tag, payload, stored_crc)?;
        infos.push(SectionInfo {
            name,
            bytes: payload.len() as u64,
            crc32: stored_crc,
            offset: start as u64,
            pad_bytes: 0,
        });
        pos = start + len;
    }
    if pos != bytes.len() {
        return Err(StoreError::Corrupt {
            section: "header",
            detail: format!("{} trailing bytes after the last section", bytes.len() - pos),
        });
    }
    Ok(Manifest { version: V1_FORMAT_VERSION, total_bytes: bytes.len() as u64, sections: infos })
}

fn verify_crc(name: &'static str, tag: u32, payload: &[u8], stored: u32) -> Result<(), StoreError> {
    let mut crc = Crc32::new();
    crc.update(&tag.to_le_bytes());
    crc.update(payload);
    let found = crc.finish();
    if found != stored {
        return Err(StoreError::ChecksumMismatch { section: name, expected: stored, found });
    }
    Ok(())
}

fn walk_v2(bytes: &[u8]) -> Result<Manifest, StoreError> {
    if bytes.len() < V2_HEADER_BYTES {
        return Err(StoreError::Truncated { context: "header", offset: bytes.len() });
    }
    check_section_count(bytes)?;
    let reserved = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if reserved != 0 {
        return Err(StoreError::Corrupt {
            section: "header",
            detail: format!("reserved header word must be zero, found {reserved:#x}"),
        });
    }
    let mut infos = Vec::with_capacity(SECTIONS.len());
    let mut pos = V2_HEADER_BYTES;
    for &(expected_tag, name) in &SECTIONS {
        let Some(header) = bytes.get(pos..pos + V2_SECTION_HEADER_BYTES) else {
            return Err(StoreError::Truncated { context: name, offset: pos });
        };
        let tag = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let pad = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        let len = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let stored_crc = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes"));
        let reserved = u32::from_le_bytes(header[20..24].try_into().expect("4 bytes"));
        if tag != expected_tag {
            return Err(StoreError::Corrupt {
                section: name,
                detail: format!("expected section tag {expected_tag}, found {tag}"),
            });
        }
        if reserved != 0 {
            return Err(StoreError::Corrupt {
                section: name,
                detail: format!("reserved frame word must be zero, found {reserved:#x}"),
            });
        }
        let len = usize::try_from(len).map_err(|_| StoreError::Corrupt {
            section: name,
            detail: format!("section length {len} exceeds addressable memory"),
        })?;
        if pad as usize != pad_for(len) {
            return Err(StoreError::Corrupt {
                section: name,
                detail: format!(
                    "padding of {pad} bytes disagrees with payload length {len} (expected {})",
                    pad_for(len)
                ),
            });
        }
        let start = pos + V2_SECTION_HEADER_BYTES;
        let Some(payload) = start.checked_add(len).and_then(|end| bytes.get(start..end)) else {
            return Err(StoreError::Truncated { context: name, offset: bytes.len() - start });
        };
        let end = start + len;
        let Some(padding) = end.checked_add(pad as usize).and_then(|pe| bytes.get(end..pe))
        else {
            return Err(StoreError::Truncated { context: name, offset: bytes.len() - end });
        };
        if let Some(i) = padding.iter().position(|&b| b != 0) {
            return Err(StoreError::Corrupt {
                section: name,
                detail: format!(
                    "padding byte {i} is {:#04x}, padding must be zero (and is outside the CRC)",
                    padding[i]
                ),
            });
        }
        verify_crc(name, tag, payload, stored_crc)?;
        infos.push(SectionInfo {
            name,
            bytes: payload.len() as u64,
            crc32: stored_crc,
            offset: start as u64,
            pad_bytes: pad,
        });
        pos = end + pad as usize;
    }
    if pos != bytes.len() {
        return Err(StoreError::Corrupt {
            section: "header",
            detail: format!("{} trailing bytes after the last section", bytes.len() - pos),
        });
    }
    Ok(Manifest { version: FORMAT_VERSION, total_bytes: bytes.len() as u64, sections: infos })
}

/// Validates file structure (magic, version, section frames, padding,
/// checksums) and returns the per-section breakdown without decoding
/// payloads.
///
/// # Errors
///
/// Any framing-level [`StoreError`].
pub fn manifest(bytes: &[u8]) -> Result<Manifest, StoreError> {
    walk(bytes)
}

// --- decoding -----------------------------------------------------------

/// The string pool, owned (v1 decode) or a view borrowed straight from
/// the v2 payload. Both decoders below resolve refs through this, so the
/// byte-wise section decoders are shared between format versions.
enum Strings<'a> {
    Owned(Vec<String>),
    View { count: usize, offsets: &'a [u8], blob: &'a [u8] },
}

impl Strings<'_> {
    fn len(&self) -> usize {
        match self {
            Strings::Owned(v) => v.len(),
            Strings::View { count, .. } => *count,
        }
    }

    fn get(&self, id: u32) -> Option<&str> {
        match self {
            Strings::Owned(v) => v.get(id as usize).map(String::as_str),
            Strings::View { count, offsets, blob } => {
                let id = id as usize;
                if id >= *count {
                    return None;
                }
                let at = |i: usize| {
                    u32::from_le_bytes(offsets[i * 4..i * 4 + 4].try_into().expect("4 bytes"))
                        as usize
                };
                blob.get(at(id)..at(id + 1)).and_then(|raw| std::str::from_utf8(raw).ok())
            }
        }
    }
}

fn decode_strings_v1(payload: &[u8]) -> Result<Vec<String>, StoreError> {
    let mut r = Reader::new("strings", payload);
    let count = r.count(4)?;
    let mut pool = Vec::with_capacity(count);
    for _ in 0..count {
        let len = r.u32()? as usize;
        let raw = r.bytes(len)?;
        pool.push(
            std::str::from_utf8(raw)
                .map_err(|e| r.corrupt(format!("invalid UTF-8: {e}")))?
                .to_owned(),
        );
    }
    r.finish()?;
    Ok(pool)
}

/// Validates the v2 strings layout (offsets monotone and bounded) and
/// returns a borrowed view; string bytes are never copied. UTF-8 is
/// checked lazily on access, surfacing as an out-of-range ref.
fn decode_strings_v2(payload: &[u8]) -> Result<Strings<'_>, StoreError> {
    let section = "strings";
    let fail = |detail: String| Err(StoreError::Corrupt { section, detail });
    if payload.len() < 8 {
        return Err(StoreError::Truncated { context: section, offset: payload.len() });
    }
    let count = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    let count = usize::try_from(count)
        .ok()
        .filter(|c| c.checked_mul(4).is_some_and(|b| b + 4 <= payload.len() - 8))
        .ok_or_else(|| StoreError::Corrupt {
            section,
            detail: format!("string count {count} cannot fit the payload"),
        })?;
    let offsets = &payload[8..8 + (count + 1) * 4];
    let blob = &payload[8 + (count + 1) * 4..];
    let at = |i: usize| {
        u32::from_le_bytes(offsets[i * 4..i * 4 + 4].try_into().expect("4 bytes")) as usize
    };
    if at(0) != 0 {
        return fail("string offsets must start at 0".to_owned());
    }
    for i in 0..count {
        if at(i) > at(i + 1) {
            return fail(format!("string offsets must be monotone (entry {i})"));
        }
    }
    if at(count) != blob.len() {
        return fail(format!(
            "string offsets end at {} but the blob holds {} bytes",
            at(count),
            blob.len()
        ));
    }
    Ok(Strings::View { count, offsets, blob })
}

fn pooled<'p>(r: &Reader<'_>, pool: &'p Strings<'_>, id: u32) -> Result<&'p str, StoreError> {
    pool.get(id).ok_or_else(|| {
        r.corrupt(format!("string ref {id} out of range or not UTF-8 ({} pooled)", pool.len()))
    })
}

fn decode_ty(r: &Reader<'_>, raw: u32, arena_len: usize) -> Result<TyId, StoreError> {
    if (raw as usize) < arena_len {
        Ok(TyId::from_index(raw as usize))
    } else {
        Err(r.corrupt(format!("type reference {raw} out of range ({arena_len} slots)")))
    }
}

fn decode_types(payload: &[u8], pool: &Strings<'_>) -> Result<TypeTable, StoreError> {
    let mut r = Reader::new("types", payload);
    let package_count = r.count(4)?;
    let mut packages = Vec::with_capacity(package_count);
    for _ in 0..package_count {
        let id = r.u32()?;
        packages.push(pooled(&r, pool, id)?.to_owned());
    }
    let slot_count = r.count(1)?;
    let mut slots = Vec::with_capacity(slot_count);
    for _ in 0..slot_count {
        slots.push(match r.u8()? {
            0 => RawSlot::Void,
            1 => RawSlot::Null,
            2 => {
                let idx = r.u8()? as usize;
                let p = *Prim::ALL
                    .get(idx)
                    .ok_or_else(|| r.corrupt(format!("primitive index {idx} out of range")))?;
                RawSlot::Prim(p)
            }
            3 => {
                let simple_ref = r.u32()?;
                let simple = pooled(&r, pool, simple_ref)?.to_owned();
                let package = PackageId::from_index(r.u32()? as usize);
                let kind = match r.u8()? {
                    0 => TypeKind::Class,
                    1 => TypeKind::Interface,
                    other => return Err(r.corrupt(format!("type kind byte {other}"))),
                };
                let superclass = match r.u32()? {
                    u32::MAX => None,
                    raw => Some(decode_ty(&r, raw, slot_count)?),
                };
                let iface_count = r.count(4)?;
                let mut interfaces = Vec::with_capacity(iface_count);
                for _ in 0..iface_count {
                    let raw = r.u32()?;
                    interfaces.push(decode_ty(&r, raw, slot_count)?);
                }
                RawSlot::Decl { simple, package, kind, superclass, interfaces }
            }
            4 => {
                let raw = r.u32()?;
                RawSlot::Array { elem: decode_ty(&r, raw, slot_count)? }
            }
            other => return Err(r.corrupt(format!("type slot tag {other}"))),
        });
    }
    r.finish()?;
    TypeTable::from_raw(packages, slots).map_err(|e| StoreError::Corrupt {
        section: "types",
        detail: e.to_string(),
    })
}

fn decode_visibility(r: &Reader<'_>, raw: u8) -> Result<Visibility, StoreError> {
    match raw {
        0 => Ok(Visibility::Public),
        1 => Ok(Visibility::Protected),
        2 => Ok(Visibility::Private),
        other => Err(r.corrupt(format!("visibility byte {other}"))),
    }
}

fn decode_members(
    payload: &[u8],
    types: TypeTable,
    pool: &Strings<'_>,
) -> Result<Api, StoreError> {
    let arena_len = types.len();
    let mut api = Api::from_types(types);
    let mut r = Reader::new("members", payload);
    let method_count = r.count(1)?;
    for _ in 0..method_count {
        let name_ref = r.u32()?;
        let name = pooled(&r, pool, name_ref)?.to_owned();
        let declaring_ref = r.u32()?;
        let declaring = decode_ty(&r, declaring_ref, arena_len)?;
        let param_count = r.count(4)?;
        let mut params = Vec::with_capacity(param_count);
        for _ in 0..param_count {
            let raw = r.u32()?;
            params.push(decode_ty(&r, raw, arena_len)?);
        }
        let name_count = r.count(1)?;
        let mut param_names = Vec::with_capacity(name_count);
        for _ in 0..name_count {
            param_names.push(match r.u8()? {
                0 => None,
                1 => {
                    let id = r.u32()?;
                    Some(pooled(&r, pool, id)?.to_owned())
                }
                other => return Err(r.corrupt(format!("param-name flag {other}"))),
            });
        }
        let ret_ref = r.u32()?;
        let ret = decode_ty(&r, ret_ref, arena_len)?;
        let vis_byte = r.u8()?;
        let visibility = decode_visibility(&r, vis_byte)?;
        let is_static = r.u8()? != 0;
        let is_constructor = r.u8()? != 0;
        api.add_method(MethodDef {
            name,
            declaring,
            params,
            param_names,
            ret,
            visibility,
            is_static,
            is_constructor,
        })
        .map_err(|e| StoreError::Corrupt { section: "members", detail: e.to_string() })?;
    }
    let field_count = r.count(1)?;
    for _ in 0..field_count {
        let name_ref = r.u32()?;
        let name = pooled(&r, pool, name_ref)?.to_owned();
        let declaring_ref = r.u32()?;
        let declaring = decode_ty(&r, declaring_ref, arena_len)?;
        let ty_ref = r.u32()?;
        let ty = decode_ty(&r, ty_ref, arena_len)?;
        let vis_byte = r.u8()?;
        let visibility = decode_visibility(&r, vis_byte)?;
        let is_static = r.u8()? != 0;
        api.add_field(FieldDef { name, declaring, ty, visibility, is_static })
            .map_err(|e| StoreError::Corrupt { section: "members", detail: e.to_string() })?;
    }
    r.finish()?;
    Ok(api)
}

fn decode_elem(r: &mut Reader<'_>, api: &Api) -> Result<ElemJungloid, StoreError> {
    let arena_len = api.types().len();
    match r.u8()? {
        0 => {
            let idx = r.u32()? as usize;
            if idx >= api.field_count() {
                return Err(
                    r.corrupt(format!("field index {idx} out of range ({})", api.field_count()))
                );
            }
            Ok(ElemJungloid::FieldAccess { field: FieldId::from_index(idx) })
        }
        1 => {
            let idx = r.u32()? as usize;
            if idx >= api.method_count() {
                return Err(
                    r.corrupt(format!("method index {idx} out of range ({})", api.method_count()))
                );
            }
            let method = MethodId::from_index(idx);
            let input = match r.u8()? {
                0 => None,
                1 => Some(InputSlot::Receiver),
                2 => {
                    let i = r.u32()? as usize;
                    if i >= api.method(method).params.len() {
                        return Err(r.corrupt(format!("parameter slot {i} out of range")));
                    }
                    Some(InputSlot::Arg(i))
                }
                other => return Err(r.corrupt(format!("input-slot tag {other}"))),
            };
            Ok(ElemJungloid::Call { method, input })
        }
        2 => {
            let (from_raw, to_raw) = (r.u32()?, r.u32()?);
            let from = decode_ty(r, from_raw, arena_len)?;
            let to = decode_ty(r, to_raw, arena_len)?;
            Ok(ElemJungloid::Widen { from, to })
        }
        3 => {
            let (from_raw, to_raw) = (r.u32()?, r.u32()?);
            let from = decode_ty(r, from_raw, arena_len)?;
            let to = decode_ty(r, to_raw, arena_len)?;
            Ok(ElemJungloid::Downcast { from, to })
        }
        other => Err(r.corrupt(format!("elementary jungloid tag {other}"))),
    }
}

/// Validates that a quad-decoded jungloid's references are all in range
/// for `api` — the v2 analogue of the per-field checks inside
/// [`decode_elem`]. Must run before `api.method(...)`-style lookups.
fn check_elem(section: &'static str, api: &Api, elem: ElemJungloid) -> Result<(), StoreError> {
    let arena_len = api.types().len();
    let fail = |detail: String| Err(StoreError::Corrupt { section, detail });
    match elem {
        ElemJungloid::FieldAccess { field } => {
            if field.index() >= api.field_count() {
                return fail(format!(
                    "field index {} out of range ({})",
                    field.index(),
                    api.field_count()
                ));
            }
        }
        ElemJungloid::Call { method, input } => {
            if method.index() >= api.method_count() {
                return fail(format!(
                    "method index {} out of range ({})",
                    method.index(),
                    api.method_count()
                ));
            }
            if let Some(InputSlot::Arg(i)) = input {
                if i >= api.method(method).params.len() {
                    return fail(format!("parameter slot {i} out of range"));
                }
            }
        }
        ElemJungloid::Widen { from, to } | ElemJungloid::Downcast { from, to } => {
            for t in [from, to] {
                if t.index() >= arena_len {
                    return fail(format!(
                        "type reference {} out of range ({arena_len} slots)",
                        t.index()
                    ));
                }
            }
        }
    }
    Ok(())
}

struct GraphMeta {
    config: GraphConfig,
    mined_base: Vec<TyId>,
    edge_count: u64,
}

fn decode_graph_meta(payload: &[u8], api: &Api) -> Result<GraphMeta, StoreError> {
    let mut r = Reader::new("graph", payload);
    let config = GraphConfig {
        include_protected: r.u8()? != 0,
        restrict_weak_params: r.u8()? != 0,
    };
    let ty_count = r.u32()? as usize;
    if ty_count != api.types().len() {
        return Err(r.corrupt(format!(
            "graph was saved over {ty_count} types but the snapshot API declares {}",
            api.types().len()
        )));
    }
    let mined_count = r.count(4)?;
    let mut mined_base = Vec::with_capacity(mined_count);
    for _ in 0..mined_count {
        let raw = r.u32()?;
        mined_base.push(decode_ty(&r, raw, ty_count)?);
    }
    let edge_count = r.u64()?;
    r.finish()?;
    Ok(GraphMeta { config, mined_base, edge_count })
}

fn decode_csr_v1(payload: &[u8], api: &Api, meta: &GraphMeta) -> Result<CsrAdjacency, StoreError> {
    let mut r = Reader::new("csr", payload);
    let node_count = r.u32()? as usize;
    let expected_nodes = api.types().len() + meta.mined_base.len();
    if node_count != expected_nodes {
        return Err(r.corrupt(format!(
            "CSR covers {node_count} nodes, graph metadata implies {expected_nodes}"
        )));
    }
    let fwd_off = r.u32_array(node_count + 1)?;
    let edge_count = r.u64()?;
    // Bound before the Vec::with_capacity below: every stored edge costs
    // at least one payload byte, so a flipped count cannot OOM the loader.
    let edge_count = usize::try_from(edge_count)
        .ok()
        .filter(|&e| e <= r.remaining())
        .ok_or_else(|| r.corrupt(format!("edge count {edge_count} cannot fit the payload")))?;
    let fwd_to = r.u32_array(edge_count)?;
    let fwd_cost = r.bytes(edge_count)?.to_vec();
    let mut fwd_elem = Vec::with_capacity(edge_count);
    for _ in 0..edge_count {
        fwd_elem.push(decode_elem(&mut r, api)?);
    }
    let rev_off = r.u32_array(node_count + 1)?;
    let rev_from = r.u32_array(edge_count)?;
    let rev_cost = r.bytes(edge_count)?.to_vec();
    r.finish()?;
    CsrAdjacency::from_arrays(fwd_off, fwd_to, fwd_elem, fwd_cost, rev_off, rev_from, rev_cost)
        .map_err(|e| StoreError::Corrupt { section: "csr", detail: e.detail })
}

/// Reads a `u32` array from the buffer as a borrowed slab when the
/// platform allows (little-endian, aligned), falling back to an owned
/// copy otherwise. `byte_off` is absolute within `buf`.
fn u32_slab(buf: &Arc<SnapshotBuf>, byte_off: usize, len: usize) -> Slab<u32> {
    Slab::borrowed(buf, byte_off, len).unwrap_or_else(|| {
        let raw = &buf.as_slice()[byte_off..byte_off + len * 4];
        Slab::from_vec(
            raw.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes"))).collect(),
        )
    })
}

fn u8_slab(buf: &Arc<SnapshotBuf>, byte_off: usize, len: usize) -> Slab<u8> {
    Slab::borrowed(buf, byte_off, len)
        .unwrap_or_else(|| Slab::from_vec(buf.as_slice()[byte_off..byte_off + len].to_vec()))
}

/// Decodes the v2 CSR section into slabs borrowed from `buf` — the
/// zero-copy core of the format. One O(edges) scan validates every
/// packed quad (shape and reference ranges) before any of them can reach
/// the query hot path; the structural offset/cost invariants are then
/// enforced by [`CsrAdjacency::from_slabs`] exactly as on the v1 path.
fn decode_csr_v2(
    buf: &Arc<SnapshotBuf>,
    info: &SectionInfo,
    api: &Api,
    meta: &GraphMeta,
) -> Result<CsrAdjacency, StoreError> {
    let section = "csr";
    let fail = |detail: String| Err(StoreError::Corrupt { section, detail });
    let payload_off = usize::try_from(info.offset).expect("offset fits usize");
    let payload_len = usize::try_from(info.bytes).expect("length fits usize");
    let payload = &buf.as_slice()[payload_off..payload_off + payload_len];
    if payload.len() < 16 {
        return Err(StoreError::Truncated { context: section, offset: payload.len() });
    }
    let node_count = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    let edge_count = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
    let expected_nodes = api.types().len() + meta.mined_base.len();
    let n = usize::try_from(node_count)
        .ok()
        .filter(|&n| n == expected_nodes)
        .ok_or_else(|| StoreError::Corrupt {
            section,
            detail: format!(
                "CSR covers {node_count} nodes, graph metadata implies {expected_nodes}"
            ),
        })?;
    // Total size closes the arithmetic: 16-byte counts, two (n+1)-entry
    // u32 offset arrays, two e-entry u32 endpoint arrays, e packed
    // 16-byte quads, two e-entry u8 cost arrays.
    let e = usize::try_from(edge_count)
        .ok()
        .and_then(|e| {
            let arrays = 8usize
                .checked_mul(n + 1)?
                .checked_add(e.checked_mul(4 + 4 + 16 + 1 + 1)?)?
                .checked_add(16)?;
            (arrays == payload_len).then_some(e)
        })
        .ok_or_else(|| StoreError::Corrupt {
            section,
            detail: format!(
                "edge count {edge_count} disagrees with the section length {payload_len}"
            ),
        })?;
    let fwd_off_at = payload_off + 16;
    let fwd_to_at = fwd_off_at + 4 * (n + 1);
    let quads_at = fwd_to_at + 4 * e;
    let rev_off_at = quads_at + 16 * e;
    let rev_from_at = rev_off_at + 4 * (n + 1);
    let fwd_cost_at = rev_from_at + 4 * e;
    let rev_cost_at = fwd_cost_at + e;

    let quads = u32_slab(buf, quads_at, 4 * e);
    for (i, quad) in quads.chunks_exact(4).enumerate() {
        let quad = [quad[0], quad[1], quad[2], quad[3]];
        let Some(elem) = decode_quad(quad) else {
            return fail(format!("edge {i} holds a malformed jungloid quad {quad:?}"));
        };
        check_elem(section, api, elem)?;
    }

    CsrAdjacency::from_slabs(
        u32_slab(buf, fwd_off_at, n + 1),
        u32_slab(buf, fwd_to_at, e),
        ElemSeq::packed(quads),
        u8_slab(buf, fwd_cost_at, e),
        u32_slab(buf, rev_off_at, n + 1),
        u32_slab(buf, rev_from_at, e),
        u8_slab(buf, rev_cost_at, e),
    )
    .map_err(|err| StoreError::Corrupt { section, detail: err.detail })
}

fn decode_examples_v1(
    payload: &[u8],
    api: &Api,
    section: &'static str,
) -> Result<Vec<Vec<ElemJungloid>>, StoreError> {
    let mut r = Reader::new(section, payload);
    let count = r.count(4)?;
    let mut examples = Vec::with_capacity(count);
    for _ in 0..count {
        let steps = r.count(2)?;
        let mut seq = Vec::with_capacity(steps);
        for _ in 0..steps {
            seq.push(decode_elem(&mut r, api)?);
        }
        examples.push(seq);
    }
    r.finish()?;
    Ok(examples)
}

/// Decodes a v2 examples/suffixes payload. The quads are materialized
/// into owned step-sequences — example splicing and dedup mutate them,
/// so unlike the CSR they do not stay borrowed.
fn decode_examples_v2(
    payload: &[u8],
    api: &Api,
    section: &'static str,
) -> Result<Vec<Vec<ElemJungloid>>, StoreError> {
    let fail = |detail: String| Err(StoreError::Corrupt { section, detail });
    if payload.len() < 16 {
        return Err(StoreError::Truncated { context: section, offset: payload.len() });
    }
    let seq_count = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    let total = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
    let sizes = usize::try_from(seq_count).ok().zip(usize::try_from(total).ok()).and_then(
        |(c, t)| {
            let need = 16usize
                .checked_add(c.checked_add(1)?.checked_mul(4)?)?
                .checked_add(t.checked_mul(16)?)?;
            (need == payload.len()).then_some((c, t))
        },
    );
    let Some((count, total)) = sizes else {
        return fail(format!(
            "{seq_count} sequences / {total} elements disagree with the section length {}",
            payload.len()
        ));
    };
    let offsets = &payload[16..16 + (count + 1) * 4];
    let quads = &payload[16 + (count + 1) * 4..];
    let at = |i: usize| {
        u32::from_le_bytes(offsets[i * 4..i * 4 + 4].try_into().expect("4 bytes")) as usize
    };
    if at(0) != 0 {
        return fail("sequence offsets must start at 0".to_owned());
    }
    for i in 0..count {
        if at(i) > at(i + 1) {
            return fail(format!("sequence offsets must be monotone (entry {i})"));
        }
    }
    if at(count) != total {
        return fail(format!("sequence offsets end at {} but {total} elements are stored", at(count)));
    }
    let mut elems = Vec::with_capacity(total);
    for (i, raw) in quads.chunks_exact(16).enumerate() {
        let word = |k: usize| u32::from_le_bytes(raw[k * 4..k * 4 + 4].try_into().expect("4 bytes"));
        let quad = [word(0), word(1), word(2), word(3)];
        let Some(elem) = decode_quad(quad) else {
            return fail(format!("element {i} holds a malformed jungloid quad {quad:?}"));
        };
        check_elem(section, api, elem)?;
        elems.push(elem);
    }
    Ok((0..count).map(|i| elems[at(i)..at(i + 1)].to_vec()).collect())
}

fn section_payload<'a>(bytes: &'a [u8], info: &SectionInfo) -> &'a [u8] {
    let start = usize::try_from(info.offset).expect("offset fits usize");
    let len = usize::try_from(info.bytes).expect("length fits usize");
    &bytes[start..start + len]
}

fn decode_v1(bytes: &[u8], manifest: &Manifest) -> Result<Snapshot, StoreError> {
    let pay = |i: usize| section_payload(bytes, &manifest.sections[i]);
    let pool = Strings::Owned(decode_strings_v1(pay(0))?);
    let types = decode_types(pay(1), &pool)?;
    let api = decode_members(pay(2), types, &pool)?;
    let meta = decode_graph_meta(pay(3), &api)?;
    let csr = decode_csr_v1(pay(4), &api, &meta)?;
    finish_snapshot(&meta, csr, pay(5), pay(6), api, decode_examples_v1)
}

fn decode_v2(buf: &Arc<SnapshotBuf>, manifest: &Manifest) -> Result<Snapshot, StoreError> {
    let bytes = buf.as_slice();
    let pay = |i: usize| section_payload(bytes, &manifest.sections[i]);
    let pool = decode_strings_v2(pay(0))?;
    let types = decode_types(pay(1), &pool)?;
    let api = decode_members(pay(2), types, &pool)?;
    let meta = decode_graph_meta(pay(3), &api)?;
    let csr = decode_csr_v2(buf, &manifest.sections[4], &api, &meta)?;
    finish_snapshot(&meta, csr, pay(5), pay(6), api, decode_examples_v2)
}

/// Decoder for one jungloid-list section (mined examples or generalized
/// suffixes) — the v1 and v2 formats differ only in element packing.
type JungloidListDecoder = fn(&[u8], &Api, &'static str) -> Result<Vec<Vec<ElemJungloid>>, StoreError>;

fn finish_snapshot(
    meta: &GraphMeta,
    csr: CsrAdjacency,
    examples_payload: &[u8],
    suffixes_payload: &[u8],
    api: Api,
    decode: JungloidListDecoder,
) -> Result<Snapshot, StoreError> {
    if csr.edge_count() as u64 != meta.edge_count {
        return Err(StoreError::Corrupt {
            section: "graph",
            detail: format!(
                "metadata records {} edges, CSR stores {}",
                meta.edge_count,
                csr.edge_count()
            ),
        });
    }
    let mined_examples = decode(examples_payload, &api, "examples")?;
    let suffixes = decode(suffixes_payload, &api, "suffixes")?;
    let graph =
        JungloidGraph::from_snapshot(&api, meta.config, meta.mined_base.clone(), suffixes, csr)
            .map_err(|e| StoreError::Corrupt { section: "graph", detail: e.detail })?;
    Ok(Snapshot { api, graph, mined_examples })
}

/// Decodes snapshot bytes back into a ready-to-query engine state. A v2
/// input is first copied into one aligned buffer so the engine can
/// borrow from it; use [`from_buf`] / [`load_file`] / [`map_file`] to
/// avoid even that single copy.
///
/// # Errors
///
/// Every malformed input returns a typed [`StoreError`]; the decoder
/// never panics. Framing damage surfaces as
/// [`StoreError::Truncated`]/[`StoreError::ChecksumMismatch`], structural
/// impossibilities as [`StoreError::Corrupt`] naming the section.
pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, StoreError> {
    let m = walk(bytes)?;
    if m.version == V1_FORMAT_VERSION {
        decode_v1(bytes, &m)
    } else {
        let buf = Arc::new(SnapshotBuf::from_bytes(bytes));
        decode_v2(&buf, &m)
    }
}

/// Decodes a snapshot straight out of an aligned buffer. For a v2 file
/// the returned engine's CSR arrays *borrow from `buf`* (the `Arc` keeps
/// it alive) — the zero-copy path; a v1 file is fully decoded into owned
/// storage as before.
///
/// # Errors
///
/// As [`from_bytes`].
pub fn from_buf(buf: &Arc<SnapshotBuf>) -> Result<(Snapshot, Manifest), StoreError> {
    let m = walk(buf.as_slice())?;
    let snapshot = if m.version == V1_FORMAT_VERSION {
        decode_v1(buf.as_slice(), &m)?
    } else {
        decode_v2(buf, &m)?
    };
    Ok((snapshot, m))
}

// --- file I/O + observability -------------------------------------------

fn record_sections(manifest: &Manifest) {
    for s in &manifest.sections {
        prospector_obs::gauge_set(&format!("store.section.{}.bytes", s.name), s.bytes);
    }
}

/// Encodes and writes a (v2) snapshot, reporting `store.save_bytes` and
/// the per-section size gauges under a `store` stage span.
///
/// # Errors
///
/// [`StoreError::Io`] on write failure.
pub fn save_file(
    path: &Path,
    api: &Api,
    graph: &JungloidGraph,
    mined_examples: &[Vec<ElemJungloid>],
) -> Result<Manifest, StoreError> {
    let _span = prospector_obs::stage("store");
    let bytes = to_bytes(api, graph, mined_examples);
    let manifest = manifest(&bytes).expect("freshly encoded snapshot is well-formed");
    std::fs::write(path, &bytes)
        .map_err(|source| StoreError::Io { path: path.to_owned(), source })?;
    prospector_obs::add("store.saves", 1);
    prospector_obs::gauge_set("store.save_bytes", bytes.len() as u64);
    record_sections(&manifest);
    prospector_obs::trace::process_event("store", "save_bytes", bytes.len() as u64);
    Ok(manifest)
}

fn record_load(manifest: &Manifest, bytes: u64, validate_us: u64, total_us: u64) {
    prospector_obs::add("store.loads", 1);
    // v1 pays a full decode (`store.load_ms`). The v2 zero-copy load is
    // validate-then-borrow, so `store.map_ms` records only the
    // validate-only stage — O(sections checksummed), the number the
    // format exists to shrink — and dashboards don't average the two
    // regimes.
    if manifest.version >= 2 {
        let ms = validate_us / 1000;
        prospector_obs::gauge_set("store.map_ms", ms);
        prospector_obs::trace::process_event("store", "map_ms", ms);
    } else {
        let ms = total_us / 1000;
        prospector_obs::gauge_set("store.load_ms", ms);
        prospector_obs::trace::process_event("store", "load_ms", ms);
    }
    prospector_obs::gauge_set("store.load_bytes", bytes);
    record_sections(manifest);
}

/// Stage one of the two-stage v2 warm start: a snapshot buffer (one
/// owned read or an mmap'd region) whose framing — magic, version,
/// section offsets, padding, CRCs — has been validated exactly once.
/// Creating one is the *validate-only* cost: O(sections checksummed),
/// with zero per-element work. [`MappedSnapshot::thaw`] is stage two,
/// materializing the owned engine state (API tables, mined examples)
/// while the hot sections — CSR arrays, string pool, suffix tables —
/// stay borrowed from this buffer.
#[derive(Debug)]
pub struct MappedSnapshot {
    buf: Arc<SnapshotBuf>,
    manifest: Manifest,
}

impl MappedSnapshot {
    /// Validates a snapshot from one owned aligned read.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the file cannot be read; any framing-level
    /// [`StoreError`] from validation.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let buf = SnapshotBuf::read_file(path)
            .map_err(|source| StoreError::Io { path: path.to_owned(), source })?;
        Self::from_snapshot_buf(buf)
    }

    /// Validates a snapshot from a read-only memory mapping when the
    /// platform supports it (falling back to an owned read), so the
    /// kernel pages the snapshot in on demand and shares it across
    /// processes.
    ///
    /// # Errors
    ///
    /// As [`MappedSnapshot::open`].
    pub fn map(path: &Path) -> Result<Self, StoreError> {
        let (buf, _) = SnapshotBuf::map_file(path)
            .map_err(|source| StoreError::Io { path: path.to_owned(), source })?;
        Self::from_snapshot_buf(buf)
    }

    fn from_snapshot_buf(buf: SnapshotBuf) -> Result<Self, StoreError> {
        let manifest = walk(buf.as_slice())?;
        Ok(MappedSnapshot { buf: Arc::new(buf), manifest })
    }

    /// The validated per-section breakdown.
    #[must_use]
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Whether the engine would serve borrowed views out of an mmap'd
    /// region: mapping succeeded *and* the file is v2 (a v1 thaw decodes
    /// everything into owned storage regardless of how it was read).
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        self.buf.is_mapped() && self.manifest.version >= 2
    }

    /// Stage two: decodes the owned engine state. Framing is NOT
    /// re-validated — that happened once at construction, which is what
    /// makes borrow-after-CRC safe. For a v2 buffer the hot sections are
    /// handed out as borrowed views (the `Arc` keeps the buffer alive);
    /// a v1 buffer takes the full owned decode.
    ///
    /// # Errors
    ///
    /// Any structural (payload-level) [`StoreError`].
    pub fn thaw(&self) -> Result<Snapshot, StoreError> {
        if self.manifest.version == V1_FORMAT_VERSION {
            decode_v1(self.buf.as_slice(), &self.manifest)
        } else {
            decode_v2(&self.buf, &self.manifest)
        }
    }
}

fn elapsed_us(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Reads and decodes a snapshot from one aligned read. For a v2 file
/// this is validate-then-borrow (the validate-only stage is recorded as
/// `store.map_ms`); v1 files take the full decode (`store.load_ms`).
///
/// # Errors
///
/// [`StoreError::Io`] if the file cannot be read; any decode-level
/// [`StoreError`] otherwise.
pub fn load_file(path: &Path) -> Result<(Snapshot, Manifest), StoreError> {
    let _span = prospector_obs::stage("store");
    let start = std::time::Instant::now();
    let mapped = MappedSnapshot::open(path)?;
    let validate_us = elapsed_us(start);
    let snapshot = mapped.thaw()?;
    record_load(&mapped.manifest, mapped.buf.len() as u64, validate_us, elapsed_us(start));
    Ok((snapshot, mapped.manifest))
}

/// Like [`load_file`] but memory-maps the file read-only when the
/// platform supports it, so the kernel pages the snapshot in on demand
/// and shares it across processes. The returned flag is `true` when the
/// engine is actually serving borrowed views out of an mmap'd region
/// (mapping succeeded *and* the file is v2); on any other combination it
/// falls back to the owned-read path and reports `false` honestly.
///
/// # Errors
///
/// As [`load_file`].
pub fn map_file(path: &Path) -> Result<(Snapshot, Manifest, bool), StoreError> {
    let _span = prospector_obs::stage("store");
    let start = std::time::Instant::now();
    let mapped = MappedSnapshot::map(path)?;
    let validate_us = elapsed_us(start);
    let snapshot = mapped.thaw()?;
    let is_mapped = mapped.is_mapped();
    record_load(&mapped.manifest, mapped.buf.len() as u64, validate_us, elapsed_us(start));
    Ok((snapshot, mapped.manifest, is_mapped))
}

/// How [`load_auto`] ended up holding the snapshot in memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadMode {
    /// Decoded into owned storage from a one-shot read (or an mmap
    /// request the platform/format could not honor).
    Owned,
    /// Serving borrowed views out of an mmap'd v2 region.
    Mapped,
}

impl LoadMode {
    /// The label `/readyz`, `/status`, and `/tenants` report.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LoadMode::Owned => "owned",
            LoadMode::Mapped => "mmap",
        }
    }
}

/// The one snapshot-opening entry point warm starts and tenant
/// (re)loads share: [`map_file`] when `mmap` is requested, [`load_file`]
/// otherwise, with the mode actually achieved reported honestly (an
/// mmap request over a v1 file or on an unsupported platform loads
/// owned and says so).
///
/// # Errors
///
/// As [`load_file`].
pub fn load_auto(path: &Path, mmap: bool) -> Result<(Snapshot, Manifest, LoadMode), StoreError> {
    if mmap {
        let (snapshot, manifest, is_mapped) = map_file(path)?;
        let mode = if is_mapped { LoadMode::Mapped } else { LoadMode::Owned };
        Ok((snapshot, manifest, mode))
    } else {
        let (snapshot, manifest) = load_file(path)?;
        Ok((snapshot, manifest, LoadMode::Owned))
    }
}
