//! The `.pspk` section layout: encoding a mined engine to bytes and
//! validating/decoding it back.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! magic "PSPK" | version u32 | section_count u32
//! then, per section, in fixed order:
//! tag u32 | payload_len u64 | crc32 u32 (over tag bytes + payload) | payload
//! ```
//!
//! | tag | section    | contents                                           |
//! |-----|------------|----------------------------------------------------|
//! | 1   | `strings`  | interned pool; other sections store `u32` refs      |
//! | 2   | `types`    | package refs + type-arena slots ([`RawSlot`] shape) |
//! | 3   | `members`  | method and field definitions, arena order           |
//! | 4   | `graph`    | config, type/mined node counts, edge count          |
//! | 5   | `csr`      | the frozen forward+reverse CSR arrays, verbatim     |
//! | 6   | `examples` | raw mined example jungloids (provenance)            |
//! | 7   | `suffixes` | generalized spliced step-sequences                  |
//!
//! The loader reconstructs [`CsrAdjacency`] directly from section 5 — no
//! rebuild — and [`JungloidGraph::from_snapshot`] derives the list
//! adjacency from it, so a warm-started engine is byte-identical to the
//! one that was saved.

use std::collections::HashMap;
use std::path::Path;

use jungloid_apidef::{Api, ElemJungloid, FieldDef, InputSlot, MethodDef, Visibility};
use jungloid_typesys::{PackageId, Prim, RawSlot, TyId, TypeKind, TypeTable};
use prospector_core::graph::{CsrAdjacency, JungloidGraph, NodeId};
use prospector_core::GraphConfig;

use crate::crc32::Crc32;
use crate::error::StoreError;
use crate::rw::{Reader, Writer};

/// The four magic bytes every snapshot starts with.
pub const MAGIC: [u8; 4] = *b"PSPK";

/// Format version written by this build; reads require exact equality
/// (any layout change bumps it — there is no in-place migration).
pub const FORMAT_VERSION: u32 = 1;

/// `(tag, name)` of every section, in file order.
const SECTIONS: [(u32, &str); 7] = [
    (1, "strings"),
    (2, "types"),
    (3, "members"),
    (4, "graph"),
    (5, "csr"),
    (6, "examples"),
    (7, "suffixes"),
];

const HEADER_BYTES: usize = 12;
const SECTION_HEADER_BYTES: usize = 16;

/// A fully decoded snapshot: everything needed to warm-start an engine.
#[derive(Debug)]
pub struct Snapshot {
    /// The API model (type table + members).
    pub api: Api,
    /// The jungloid graph, CSR reconstructed verbatim (no rebuild).
    pub graph: JungloidGraph,
    /// The raw mined example jungloids the engine was built from, kept
    /// for provenance/inspection (the generalized splices live in the
    /// graph itself).
    pub mined_examples: Vec<Vec<ElemJungloid>>,
}

/// Size/checksum breakdown of one stored section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section name (matches the table in the module docs).
    pub name: &'static str,
    /// Payload bytes (headers excluded).
    pub bytes: u64,
    /// Stored (and verified) CRC32 over tag + payload.
    pub crc32: u32,
}

/// What `index inspect` prints: the validated file structure, without
/// necessarily decoding the payloads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Format version found in the header.
    pub version: u32,
    /// Whole-file size in bytes.
    pub total_bytes: u64,
    /// Per-section breakdown, in file order.
    pub sections: Vec<SectionInfo>,
}

/// Whether `bytes` look like a binary snapshot (magic sniff only) — the
/// CLI uses this to route `--index` files between this format and the
/// JSON debug path.
#[must_use]
pub fn is_snapshot(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == MAGIC
}

// --- encoding -----------------------------------------------------------

/// Deduplicating string pool; all other sections store `u32` refs into it.
#[derive(Default)]
struct StringPool {
    strings: Vec<String>,
    index: HashMap<String, u32>,
}

impl StringPool {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = u32::try_from(self.strings.len()).expect("string pool fits u32");
        self.strings.push(s.to_owned());
        self.index.insert(s.to_owned(), id);
        id
    }
}

fn encode_elem(w: &mut Writer, elem: &ElemJungloid) {
    match *elem {
        ElemJungloid::FieldAccess { field } => {
            w.u8(0);
            w.index(field.index());
        }
        ElemJungloid::Call { method, input } => {
            w.u8(1);
            w.index(method.index());
            match input {
                None => w.u8(0),
                Some(InputSlot::Receiver) => w.u8(1),
                Some(InputSlot::Arg(i)) => {
                    w.u8(2);
                    w.index(i);
                }
            }
        }
        ElemJungloid::Widen { from, to } => {
            w.u8(2);
            w.index(from.index());
            w.index(to.index());
        }
        ElemJungloid::Downcast { from, to } => {
            w.u8(3);
            w.index(from.index());
            w.index(to.index());
        }
    }
}

fn encode_examples(examples: &[Vec<ElemJungloid>]) -> Vec<u8> {
    let mut w = Writer::new();
    w.index(examples.len());
    for steps in examples {
        w.index(steps.len());
        for step in steps {
            encode_elem(&mut w, step);
        }
    }
    w.into_bytes()
}

fn encode_types(types: &TypeTable, pool: &mut StringPool) -> Vec<u8> {
    let mut w = Writer::new();
    let packages = types.raw_packages();
    w.index(packages.len());
    for p in packages {
        w.u32(pool.intern(p));
    }
    let slots = types.raw_slots();
    w.index(slots.len());
    for slot in slots {
        match slot {
            RawSlot::Void => w.u8(0),
            RawSlot::Null => w.u8(1),
            RawSlot::Prim(p) => {
                w.u8(2);
                w.u8(u8::try_from(Prim::ALL.iter().position(|q| *q == p).expect("listed"))
                    .expect("8 prims"));
            }
            RawSlot::Decl { simple, package, kind, superclass, interfaces } => {
                w.u8(3);
                w.u32(pool.intern(&simple));
                w.index(package.index());
                w.u8(match kind {
                    TypeKind::Class => 0,
                    TypeKind::Interface => 1,
                });
                w.u32(superclass.map_or(u32::MAX, |s| {
                    u32::try_from(s.index()).expect("arena fits u32")
                }));
                w.index(interfaces.len());
                for i in interfaces {
                    w.index(i.index());
                }
            }
            RawSlot::Array { elem } => {
                w.u8(4);
                w.index(elem.index());
            }
        }
    }
    w.into_bytes()
}

fn encode_visibility(v: Visibility) -> u8 {
    match v {
        Visibility::Public => 0,
        Visibility::Protected => 1,
        Visibility::Private => 2,
    }
}

fn encode_members(api: &Api, pool: &mut StringPool) -> Vec<u8> {
    let mut w = Writer::new();
    w.index(api.method_count());
    for m in api.method_ids() {
        let def = api.method(m);
        w.u32(pool.intern(&def.name));
        w.index(def.declaring.index());
        w.index(def.params.len());
        for p in &def.params {
            w.index(p.index());
        }
        w.index(def.param_names.len());
        for name in &def.param_names {
            match name {
                None => w.u8(0),
                Some(n) => {
                    w.u8(1);
                    w.u32(pool.intern(n));
                }
            }
        }
        w.index(def.ret.index());
        w.u8(encode_visibility(def.visibility));
        w.u8(u8::from(def.is_static));
        w.u8(u8::from(def.is_constructor));
    }
    w.index(api.field_count());
    for f in api.field_ids() {
        let def = api.field(f);
        w.u32(pool.intern(&def.name));
        w.index(def.declaring.index());
        w.index(def.ty.index());
        w.u8(encode_visibility(def.visibility));
        w.u8(u8::from(def.is_static));
    }
    w.into_bytes()
}

fn encode_graph_meta(graph: &JungloidGraph) -> Vec<u8> {
    let mut w = Writer::new();
    let config = graph.config();
    w.u8(u8::from(config.include_protected));
    w.u8(u8::from(config.restrict_weak_params));
    let ty_count = graph.node_count() - graph.mined_node_count();
    w.index(ty_count);
    w.index(graph.mined_node_count());
    for i in 0..graph.mined_node_count() {
        let base = graph.base_ty(NodeId::Mined(u32::try_from(i).expect("mined fits u32")));
        w.index(base.index());
    }
    w.u64(graph.edge_count() as u64);
    w.into_bytes()
}

fn encode_csr(csr: &CsrAdjacency) -> Vec<u8> {
    let mut w = Writer::new();
    w.index(csr.node_count());
    for &off in csr.out_offsets() {
        w.u32(off);
    }
    w.u64(csr.edge_count() as u64);
    for &to in csr.out_to() {
        w.u32(to);
    }
    for &cost in csr.out_cost() {
        w.u8(cost);
    }
    for elem in csr.out_elem() {
        encode_elem(&mut w, elem);
    }
    for &off in csr.in_offsets() {
        w.u32(off);
    }
    for &from in csr.in_from() {
        w.u32(from);
    }
    for &cost in csr.in_cost() {
        w.u8(cost);
    }
    w.into_bytes()
}

fn encode_strings(pool: &StringPool) -> Vec<u8> {
    let mut w = Writer::new();
    w.index(pool.strings.len());
    for s in &pool.strings {
        w.index(s.len());
        w.bytes(s.as_bytes());
    }
    w.into_bytes()
}

fn emit_section(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    let mut crc = Crc32::new();
    crc.update(&tag.to_le_bytes());
    crc.update(payload);
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out.extend_from_slice(payload);
}

/// Encodes a mined engine (API + graph + raw mined examples) to snapshot
/// bytes.
#[must_use]
pub fn to_bytes(api: &Api, graph: &JungloidGraph, mined_examples: &[Vec<ElemJungloid>]) -> Vec<u8> {
    let mut pool = StringPool::default();
    // Sections that intern strings are encoded first; the pool itself is
    // then emitted as section 1, ahead of everything that references it.
    let types = encode_types(api.types(), &mut pool);
    let members = encode_members(api, &mut pool);
    let graph_meta = encode_graph_meta(graph);
    let csr = encode_csr(graph.csr());
    let examples = encode_examples(mined_examples);
    let suffixes = encode_examples(graph.examples());
    let strings = encode_strings(&pool);

    let payloads = [&strings, &types, &members, &graph_meta, &csr, &examples, &suffixes];
    let total = HEADER_BYTES
        + payloads.iter().map(|p| SECTION_HEADER_BYTES + p.len()).sum::<usize>();
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&u32::try_from(SECTIONS.len()).expect("few sections").to_le_bytes());
    for ((tag, _), payload) in SECTIONS.iter().zip(payloads) {
        emit_section(&mut out, *tag, payload);
    }
    out
}

// --- decoding -----------------------------------------------------------

/// Validates the header and every section frame (tag order, length
/// bounds, CRC32), returning payload slices in section order plus the
/// manifest. Shared by [`from_bytes`] and [`manifest`].
fn walk(bytes: &[u8]) -> Result<(Vec<&[u8]>, Manifest), StoreError> {
    if bytes.len() < HEADER_BYTES {
        return Err(StoreError::Truncated { context: "header", offset: bytes.len() });
    }
    if bytes[..4] != MAGIC {
        return Err(StoreError::BadMagic { found: bytes[..4].try_into().expect("4 bytes") });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion { found: version, supported: FORMAT_VERSION });
    }
    let count = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if count as usize != SECTIONS.len() {
        return Err(StoreError::Corrupt {
            section: "header",
            detail: format!("{count} sections recorded, format version {FORMAT_VERSION} has {}", SECTIONS.len()),
        });
    }
    let mut payloads = Vec::with_capacity(SECTIONS.len());
    let mut infos = Vec::with_capacity(SECTIONS.len());
    let mut pos = HEADER_BYTES;
    for &(expected_tag, name) in &SECTIONS {
        let Some(header) = bytes.get(pos..pos + SECTION_HEADER_BYTES) else {
            return Err(StoreError::Truncated { context: name, offset: pos });
        };
        let tag = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let len = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        let stored_crc = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
        if tag != expected_tag {
            return Err(StoreError::Corrupt {
                section: name,
                detail: format!("expected section tag {expected_tag}, found {tag}"),
            });
        }
        let len = usize::try_from(len).map_err(|_| StoreError::Corrupt {
            section: name,
            detail: format!("section length {len} exceeds addressable memory"),
        })?;
        let start = pos + SECTION_HEADER_BYTES;
        let Some(payload) = start.checked_add(len).and_then(|end| bytes.get(start..end)) else {
            return Err(StoreError::Truncated { context: name, offset: bytes.len() - start });
        };
        let mut crc = Crc32::new();
        crc.update(&tag.to_le_bytes());
        crc.update(payload);
        let found = crc.finish();
        if found != stored_crc {
            return Err(StoreError::ChecksumMismatch { section: name, expected: stored_crc, found });
        }
        payloads.push(payload);
        infos.push(SectionInfo { name, bytes: payload.len() as u64, crc32: stored_crc });
        pos = start + len;
    }
    if pos != bytes.len() {
        return Err(StoreError::Corrupt {
            section: "header",
            detail: format!("{} trailing bytes after the last section", bytes.len() - pos),
        });
    }
    let manifest =
        Manifest { version, total_bytes: bytes.len() as u64, sections: infos };
    Ok((payloads, manifest))
}

/// Validates file structure (magic, version, section frames, checksums)
/// and returns the per-section breakdown without decoding payloads.
///
/// # Errors
///
/// Any framing-level [`StoreError`].
pub fn manifest(bytes: &[u8]) -> Result<Manifest, StoreError> {
    walk(bytes).map(|(_, m)| m)
}

fn decode_strings(payload: &[u8]) -> Result<Vec<String>, StoreError> {
    let mut r = Reader::new("strings", payload);
    let count = r.count(4)?;
    let mut pool = Vec::with_capacity(count);
    for _ in 0..count {
        let len = r.u32()? as usize;
        let raw = r.bytes(len)?;
        pool.push(
            std::str::from_utf8(raw)
                .map_err(|e| r.corrupt(format!("invalid UTF-8: {e}")))?
                .to_owned(),
        );
    }
    r.finish()?;
    Ok(pool)
}

fn pooled<'p>(r: &Reader<'_>, pool: &'p [String], id: u32) -> Result<&'p String, StoreError> {
    pool.get(id as usize)
        .ok_or_else(|| r.corrupt(format!("string ref {id} out of range ({} pooled)", pool.len())))
}

fn decode_ty(r: &Reader<'_>, raw: u32, arena_len: usize) -> Result<TyId, StoreError> {
    if (raw as usize) < arena_len {
        Ok(TyId::from_index(raw as usize))
    } else {
        Err(r.corrupt(format!("type reference {raw} out of range ({arena_len} slots)")))
    }
}

fn decode_types(payload: &[u8], pool: &[String]) -> Result<TypeTable, StoreError> {
    let mut r = Reader::new("types", payload);
    let package_count = r.count(4)?;
    let mut packages = Vec::with_capacity(package_count);
    for _ in 0..package_count {
        let id = r.u32()?;
        packages.push(pooled(&r, pool, id)?.clone());
    }
    let slot_count = r.count(1)?;
    let mut slots = Vec::with_capacity(slot_count);
    for _ in 0..slot_count {
        slots.push(match r.u8()? {
            0 => RawSlot::Void,
            1 => RawSlot::Null,
            2 => {
                let idx = r.u8()? as usize;
                let p = *Prim::ALL
                    .get(idx)
                    .ok_or_else(|| r.corrupt(format!("primitive index {idx} out of range")))?;
                RawSlot::Prim(p)
            }
            3 => {
                let simple_ref = r.u32()?;
                let simple = pooled(&r, pool, simple_ref)?.clone();
                let package = PackageId::from_index(r.u32()? as usize);
                let kind = match r.u8()? {
                    0 => TypeKind::Class,
                    1 => TypeKind::Interface,
                    other => return Err(r.corrupt(format!("type kind byte {other}"))),
                };
                let superclass = match r.u32()? {
                    u32::MAX => None,
                    raw => Some(decode_ty(&r, raw, slot_count)?),
                };
                let iface_count = r.count(4)?;
                let mut interfaces = Vec::with_capacity(iface_count);
                for _ in 0..iface_count {
                    let raw = r.u32()?;
                    interfaces.push(decode_ty(&r, raw, slot_count)?);
                }
                RawSlot::Decl { simple, package, kind, superclass, interfaces }
            }
            4 => {
                let raw = r.u32()?;
                RawSlot::Array { elem: decode_ty(&r, raw, slot_count)? }
            }
            other => return Err(r.corrupt(format!("type slot tag {other}"))),
        });
    }
    r.finish()?;
    TypeTable::from_raw(packages, slots).map_err(|e| StoreError::Corrupt {
        section: "types",
        detail: e.to_string(),
    })
}

fn decode_visibility(r: &Reader<'_>, raw: u8) -> Result<Visibility, StoreError> {
    match raw {
        0 => Ok(Visibility::Public),
        1 => Ok(Visibility::Protected),
        2 => Ok(Visibility::Private),
        other => Err(r.corrupt(format!("visibility byte {other}"))),
    }
}

fn decode_members(payload: &[u8], types: TypeTable, pool: &[String]) -> Result<Api, StoreError> {
    let arena_len = types.len();
    let mut api = Api::from_types(types);
    let mut r = Reader::new("members", payload);
    let method_count = r.count(1)?;
    for _ in 0..method_count {
        let name_ref = r.u32()?;
        let name = pooled(&r, pool, name_ref)?.clone();
        let declaring_ref = r.u32()?;
        let declaring = decode_ty(&r, declaring_ref, arena_len)?;
        let param_count = r.count(4)?;
        let mut params = Vec::with_capacity(param_count);
        for _ in 0..param_count {
            let raw = r.u32()?;
            params.push(decode_ty(&r, raw, arena_len)?);
        }
        let name_count = r.count(1)?;
        let mut param_names = Vec::with_capacity(name_count);
        for _ in 0..name_count {
            param_names.push(match r.u8()? {
                0 => None,
                1 => {
                    let id = r.u32()?;
                    Some(pooled(&r, pool, id)?.clone())
                }
                other => return Err(r.corrupt(format!("param-name flag {other}"))),
            });
        }
        let ret_ref = r.u32()?;
        let ret = decode_ty(&r, ret_ref, arena_len)?;
        let vis_byte = r.u8()?;
        let visibility = decode_visibility(&r, vis_byte)?;
        let is_static = r.u8()? != 0;
        let is_constructor = r.u8()? != 0;
        api.add_method(MethodDef {
            name,
            declaring,
            params,
            param_names,
            ret,
            visibility,
            is_static,
            is_constructor,
        })
        .map_err(|e| StoreError::Corrupt { section: "members", detail: e.to_string() })?;
    }
    let field_count = r.count(1)?;
    for _ in 0..field_count {
        let name_ref = r.u32()?;
        let name = pooled(&r, pool, name_ref)?.clone();
        let declaring_ref = r.u32()?;
        let declaring = decode_ty(&r, declaring_ref, arena_len)?;
        let ty_ref = r.u32()?;
        let ty = decode_ty(&r, ty_ref, arena_len)?;
        let vis_byte = r.u8()?;
        let visibility = decode_visibility(&r, vis_byte)?;
        let is_static = r.u8()? != 0;
        api.add_field(FieldDef { name, declaring, ty, visibility, is_static })
            .map_err(|e| StoreError::Corrupt { section: "members", detail: e.to_string() })?;
    }
    r.finish()?;
    Ok(api)
}

fn decode_elem(r: &mut Reader<'_>, api: &Api) -> Result<ElemJungloid, StoreError> {
    let arena_len = api.types().len();
    match r.u8()? {
        0 => {
            let idx = r.u32()? as usize;
            let field = api.field_ids().nth(idx).ok_or_else(|| {
                r.corrupt(format!("field index {idx} out of range ({})", api.field_count()))
            })?;
            Ok(ElemJungloid::FieldAccess { field })
        }
        1 => {
            let idx = r.u32()? as usize;
            let method = api.method_ids().nth(idx).ok_or_else(|| {
                r.corrupt(format!("method index {idx} out of range ({})", api.method_count()))
            })?;
            let input = match r.u8()? {
                0 => None,
                1 => Some(InputSlot::Receiver),
                2 => {
                    let i = r.u32()? as usize;
                    if i >= api.method(method).params.len() {
                        return Err(r.corrupt(format!("parameter slot {i} out of range")));
                    }
                    Some(InputSlot::Arg(i))
                }
                other => return Err(r.corrupt(format!("input-slot tag {other}"))),
            };
            Ok(ElemJungloid::Call { method, input })
        }
        2 => {
            let (from_raw, to_raw) = (r.u32()?, r.u32()?);
            let from = decode_ty(r, from_raw, arena_len)?;
            let to = decode_ty(r, to_raw, arena_len)?;
            Ok(ElemJungloid::Widen { from, to })
        }
        3 => {
            let (from_raw, to_raw) = (r.u32()?, r.u32()?);
            let from = decode_ty(r, from_raw, arena_len)?;
            let to = decode_ty(r, to_raw, arena_len)?;
            Ok(ElemJungloid::Downcast { from, to })
        }
        other => Err(r.corrupt(format!("elementary jungloid tag {other}"))),
    }
}

struct GraphMeta {
    config: GraphConfig,
    mined_base: Vec<TyId>,
    edge_count: u64,
}

fn decode_graph_meta(payload: &[u8], api: &Api) -> Result<GraphMeta, StoreError> {
    let mut r = Reader::new("graph", payload);
    let config = GraphConfig {
        include_protected: r.u8()? != 0,
        restrict_weak_params: r.u8()? != 0,
    };
    let ty_count = r.u32()? as usize;
    if ty_count != api.types().len() {
        return Err(r.corrupt(format!(
            "graph was saved over {ty_count} types but the snapshot API declares {}",
            api.types().len()
        )));
    }
    let mined_count = r.count(4)?;
    let mut mined_base = Vec::with_capacity(mined_count);
    for _ in 0..mined_count {
        let raw = r.u32()?;
        mined_base.push(decode_ty(&r, raw, ty_count)?);
    }
    let edge_count = r.u64()?;
    r.finish()?;
    Ok(GraphMeta { config, mined_base, edge_count })
}

fn decode_csr(payload: &[u8], api: &Api, meta: &GraphMeta) -> Result<CsrAdjacency, StoreError> {
    let mut r = Reader::new("csr", payload);
    let node_count = r.u32()? as usize;
    let expected_nodes = api.types().len() + meta.mined_base.len();
    if node_count != expected_nodes {
        return Err(r.corrupt(format!(
            "CSR covers {node_count} nodes, graph metadata implies {expected_nodes}"
        )));
    }
    let fwd_off = r.u32_array(node_count + 1)?;
    let edge_count = r.u64()?;
    // Bound before the Vec::with_capacity below: every stored edge costs
    // at least one payload byte, so a flipped count cannot OOM the loader.
    let edge_count = usize::try_from(edge_count)
        .ok()
        .filter(|&e| e <= r.remaining())
        .ok_or_else(|| r.corrupt(format!("edge count {edge_count} cannot fit the payload")))?;
    let fwd_to = r.u32_array(edge_count)?;
    let fwd_cost = r.bytes(edge_count)?.to_vec();
    let mut fwd_elem = Vec::with_capacity(edge_count);
    for _ in 0..edge_count {
        fwd_elem.push(decode_elem(&mut r, api)?);
    }
    let rev_off = r.u32_array(node_count + 1)?;
    let rev_from = r.u32_array(edge_count)?;
    let rev_cost = r.bytes(edge_count)?.to_vec();
    r.finish()?;
    CsrAdjacency::from_arrays(fwd_off, fwd_to, fwd_elem, fwd_cost, rev_off, rev_from, rev_cost)
        .map_err(|e| StoreError::Corrupt { section: "csr", detail: e.detail })
}

fn decode_examples(
    payload: &[u8],
    api: &Api,
    section: &'static str,
) -> Result<Vec<Vec<ElemJungloid>>, StoreError> {
    let mut r = Reader::new(section, payload);
    let count = r.count(4)?;
    let mut examples = Vec::with_capacity(count);
    for _ in 0..count {
        let steps = r.count(2)?;
        let mut seq = Vec::with_capacity(steps);
        for _ in 0..steps {
            seq.push(decode_elem(&mut r, api)?);
        }
        examples.push(seq);
    }
    r.finish()?;
    Ok(examples)
}

/// Decodes snapshot bytes back into a ready-to-query engine state.
///
/// # Errors
///
/// Every malformed input returns a typed [`StoreError`]; the decoder
/// never panics. Framing damage surfaces as
/// [`StoreError::Truncated`]/[`StoreError::ChecksumMismatch`], structural
/// impossibilities as [`StoreError::Corrupt`] naming the section.
pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, StoreError> {
    let (payloads, _) = walk(bytes)?;
    let pool = decode_strings(payloads[0])?;
    let types = decode_types(payloads[1], &pool)?;
    let api = decode_members(payloads[2], types, &pool)?;
    let meta = decode_graph_meta(payloads[3], &api)?;
    let csr = decode_csr(payloads[4], &api, &meta)?;
    if csr.edge_count() as u64 != meta.edge_count {
        return Err(StoreError::Corrupt {
            section: "graph",
            detail: format!(
                "metadata records {} edges, CSR stores {}",
                meta.edge_count,
                csr.edge_count()
            ),
        });
    }
    let mined_examples = decode_examples(payloads[5], &api, "examples")?;
    let suffixes = decode_examples(payloads[6], &api, "suffixes")?;
    let graph = JungloidGraph::from_snapshot(&api, meta.config, meta.mined_base, suffixes, csr)
        .map_err(|e| StoreError::Corrupt { section: "graph", detail: e.detail })?;
    Ok(Snapshot { api, graph, mined_examples })
}

// --- file I/O + observability -------------------------------------------

fn record_sections(manifest: &Manifest) {
    for s in &manifest.sections {
        prospector_obs::gauge_set(&format!("store.section.{}.bytes", s.name), s.bytes);
    }
}

/// Encodes and writes a snapshot, reporting `store.save_bytes` and the
/// per-section size gauges under a `store` stage span.
///
/// # Errors
///
/// [`StoreError::Io`] on write failure.
pub fn save_file(
    path: &Path,
    api: &Api,
    graph: &JungloidGraph,
    mined_examples: &[Vec<ElemJungloid>],
) -> Result<Manifest, StoreError> {
    let _span = prospector_obs::stage("store");
    let bytes = to_bytes(api, graph, mined_examples);
    let manifest = manifest(&bytes).expect("freshly encoded snapshot is well-formed");
    std::fs::write(path, &bytes)
        .map_err(|source| StoreError::Io { path: path.to_owned(), source })?;
    prospector_obs::add("store.saves", 1);
    prospector_obs::gauge_set("store.save_bytes", bytes.len() as u64);
    record_sections(&manifest);
    prospector_obs::trace::process_event("store", "save_bytes", bytes.len() as u64);
    Ok(manifest)
}

/// Reads and decodes a snapshot, reporting `store.load_ms` and the
/// per-section size gauges under a `store` stage span.
///
/// # Errors
///
/// [`StoreError::Io`] if the file cannot be read; any decode-level
/// [`StoreError`] otherwise.
pub fn load_file(path: &Path) -> Result<(Snapshot, Manifest), StoreError> {
    let _span = prospector_obs::stage("store");
    let start = std::time::Instant::now();
    let bytes =
        std::fs::read(path).map_err(|source| StoreError::Io { path: path.to_owned(), source })?;
    let (payloads_manifest, snapshot) = {
        let m = manifest(&bytes)?;
        (m, from_bytes(&bytes)?)
    };
    let ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
    prospector_obs::add("store.loads", 1);
    prospector_obs::gauge_set("store.load_ms", ms);
    prospector_obs::gauge_set("store.load_bytes", bytes.len() as u64);
    record_sections(&payloads_manifest);
    prospector_obs::trace::process_event("store", "load_ms", ms);
    Ok((snapshot, payloads_manifest))
}
