//! Typed failures for the `.pspk` snapshot format. Every malformed input
//! — truncated, bit-flipped, version-skewed, or structurally impossible —
//! maps to one of these variants; the loader never panics.

use std::path::PathBuf;

/// Why a snapshot could not be written or read back.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Reading or writing the snapshot file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file does not start with the `PSPK` magic — it is not a binary
    /// snapshot at all.
    BadMagic {
        /// The first four bytes actually found.
        found: [u8; 4],
    },
    /// The file's format version is newer (or older) than this build
    /// understands. The version gate is strict equality: any change to
    /// the section layout bumps [`crate::FORMAT_VERSION`].
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The byte stream ended before a length-prefixed value was complete.
    Truncated {
        /// Which section (or `"header"`) was being read.
        context: &'static str,
        /// Byte offset within that context where input ran out.
        offset: usize,
    },
    /// A section's stored CRC32 does not match its contents.
    ChecksumMismatch {
        /// The damaged section.
        section: &'static str,
        /// Checksum recorded in the file.
        expected: u32,
        /// Checksum computed over the bytes actually present.
        found: u32,
    },
    /// A section decoded structurally but describes something impossible
    /// (out-of-range reference, disagreeing counts, invalid enum tag...).
    Corrupt {
        /// The offending section.
        section: &'static str,
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            StoreError::BadMagic { found } => {
                write!(f, "not a prospector snapshot (magic {found:02x?}, want `PSPK`)")
            }
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads version {supported})"
            ),
            StoreError::Truncated { context, offset } => {
                write!(f, "snapshot truncated in `{context}` at byte {offset}")
            }
            StoreError::ChecksumMismatch { section, expected, found } => write!(
                f,
                "section `{section}` is corrupt: stored crc32 {expected:#010x}, computed {found:#010x}"
            ),
            StoreError::Corrupt { section, detail } => {
                write!(f, "section `{section}` is corrupt: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
