//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! guarding every `.pspk` section. Hand-rolled because the workspace is
//! dependency-free; the lookup table is built once on first use.

use std::sync::OnceLock;

static TABLE: OnceLock<[u32; 256]> = OnceLock::new();

fn table() -> &'static [u32; 256] {
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = u32::try_from(i).expect("byte range");
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// Incremental CRC32 state, so a section's tag and payload can be
/// checksummed together without concatenating them.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh checksum.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            self.state = t[((self.state ^ u32::from(b)) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// The final checksum value.
    #[must_use]
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC32 of a byte slice.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The canonical CRC32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finish(), crc32(b"123456789"));
    }

    #[test]
    fn single_bit_flips_change_the_sum() {
        let base = crc32(b"prospector");
        let mut bytes = *b"prospector";
        for i in 0..bytes.len() {
            for bit in 0..8 {
                bytes[i] ^= 1 << bit;
                assert_ne!(crc32(&bytes), base, "flip at byte {i} bit {bit} undetected");
                bytes[i] ^= 1 << bit;
            }
        }
    }
}
