//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! guarding every `.pspk` section. Hand-rolled because the workspace is
//! dependency-free; the tables are built once on first use.
//!
//! Uses the slicing-by-16 technique: sixteen derived lookup tables let
//! the inner loop fold 16 input bytes per iteration instead of 1, which
//! keeps the validate-only (zero-copy) load path dominated by I/O rather
//! than checksumming.

use std::sync::OnceLock;

const SLICES: usize = 16;

static TABLES: OnceLock<[[u32; 256]; SLICES]> = OnceLock::new();

fn tables() -> &'static [[u32; 256]; SLICES] {
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; SLICES];
        for (i, entry) in t[0].iter_mut().enumerate() {
            let mut c = u32::try_from(i).expect("byte range");
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        // Table k advances a byte through k additional zero bytes, so one
        // round of sixteen lookups equals sixteen rounds of the classic
        // byte-at-a-time loop.
        for k in 1..SLICES {
            for i in 0..256 {
                let prev = t[k - 1][i];
                t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            }
        }
        t
    })
}

/// Incremental CRC32 state, so a section's tag and payload can be
/// checksummed together without concatenating them.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh checksum.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = tables();
        let word = |c: &[u8], i: usize| {
            u32::from_le_bytes(c[i * 4..i * 4 + 4].try_into().expect("4 bytes"))
        };
        let mut chunks = bytes.chunks_exact(SLICES);
        for chunk in &mut chunks {
            let words =
                [self.state ^ word(chunk, 0), word(chunk, 1), word(chunk, 2), word(chunk, 3)];
            let mut next = 0u32;
            for (w, word) in words.into_iter().enumerate() {
                for b in 0..4 {
                    next ^= t[SLICES - 1 - (w * 4 + b)][((word >> (8 * b)) & 0xFF) as usize];
                }
            }
            self.state = next;
        }
        for &b in chunks.remainder() {
            self.state = t[0][((self.state ^ u32::from(b)) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// The final checksum value.
    #[must_use]
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC32 of a byte slice.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The canonical CRC32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finish(), crc32(b"123456789"));
    }

    #[test]
    fn single_bit_flips_change_the_sum() {
        let base = crc32(b"prospector");
        let mut bytes = *b"prospector";
        for i in 0..bytes.len() {
            for bit in 0..8 {
                bytes[i] ^= 1 << bit;
                assert_ne!(crc32(&bytes), base, "flip at byte {i} bit {bit} undetected");
                bytes[i] ^= 1 << bit;
            }
        }
    }
}
