//! `prospector-store`: the `.pspk` versioned binary snapshot format.
//!
//! The JSON path in `prospector_core::persist` is the *debug* format —
//! human-readable, but it re-parses every node and rebuilds the CSR
//! adjacency on load. This crate is the *production* path: a
//! little-endian binary layout whose hot sections (forward+reverse CSR
//! arrays, string pool, packed jungloid quads) are 8-byte-aligned slabs
//! the loader *borrows directly* from one aligned read — or an mmap'd
//! region via [`map_file`] — so a server warm-starts by validating
//! checksums once and handing out views, with zero per-element copies
//! and no graph construction, mining, or generalization.
//!
//! Format guarantees:
//!
//! - **Versioned.** Files open with the `PSPK` magic and a format
//!   version; a build reads its own version ([`FORMAT_VERSION`]) and
//!   every older one (v1 via the original full-decode path, still
//!   writable with [`to_bytes_v1`]), and anything newer is a typed
//!   [`StoreError::UnsupportedVersion`] — never a misparse.
//! - **Checksummed.** Each of the seven sections carries a CRC32 over
//!   its tag and payload; a single flipped bit anywhere surfaces as
//!   [`StoreError::ChecksumMismatch`] naming the section (a flipped
//!   byte in v2 alignment padding, which sits outside the CRC, is a
//!   [`StoreError::Corrupt`] naming the section instead).
//! - **Panic-free loading.** Every count is bounds-proved before
//!   allocation and every cross-reference (string, type, method, field,
//!   node) is validated against the tables decoded so far — including
//!   one O(edges) scan over the packed quads before any of them can be
//!   borrowed into the query hot path; all damage maps to a
//!   [`StoreError`].
//! - **Byte-identical warm start.** The loader rebuilds nothing: the
//!   CSR arrays, mined nodes, and generalized suffixes round-trip
//!   verbatim, so a reloaded engine — owned or borrowed — answers
//!   queries identically to the one that was saved.

mod crc32;
mod error;
mod rw;
mod snapshot;

pub use crc32::{crc32, Crc32};
pub use error::StoreError;
pub use snapshot::{
    from_buf, from_bytes, is_snapshot, load_auto, load_file, manifest, map_file, pad_for,
    save_file, to_bytes, to_bytes_v1, LoadMode, Manifest, MappedSnapshot, SectionInfo, Snapshot,
    FORMAT_VERSION, MAGIC, V1_FORMAT_VERSION,
};

#[cfg(test)]
mod tests {
    use super::*;
    use jungloid_apidef::{Api, ApiLoader, ElemJungloid};
    use prospector_core::graph::JungloidGraph;
    use prospector_core::GraphConfig;

    fn tiny_engine() -> (Api, JungloidGraph) {
        let mut api = ApiLoader::with_prelude().finish().expect("prelude");
        api.class("java.io", "Reader").expect("declare");
        api.class("java.io", "InputStream").expect("declare");
        api.class("java.io", "InputStreamReader")
            .expect("declare")
            .extends("Reader")
            .expect("extends")
            .ctor(&["InputStream"])
            .expect("ctor");
        api.class("java.io", "BufferedReader")
            .expect("declare")
            .extends("Reader")
            .expect("extends")
            .ctor(&["Reader"])
            .expect("ctor")
            .method("readLine", &[], "String")
            .expect("method");
        let graph = JungloidGraph::from_api(&api, GraphConfig::default());
        (api, graph)
    }

    #[test]
    fn round_trip_preserves_api_and_graph() {
        let (api, graph) = tiny_engine();
        let mined: Vec<Vec<ElemJungloid>> = Vec::new();
        let bytes = to_bytes(&api, &graph, &mined);
        let snap = from_bytes(&bytes).expect("round trip");
        assert_eq!(snap.api.types().len(), api.types().len());
        assert_eq!(snap.api.method_count(), api.method_count());
        assert_eq!(snap.api.field_count(), api.field_count());
        assert_eq!(snap.graph.node_count(), graph.node_count());
        assert_eq!(snap.graph.edge_count(), graph.edge_count());
        assert_eq!(snap.graph.config(), graph.config());
        assert_eq!(snap.graph.examples(), graph.examples());
        assert_eq!(snap.graph.csr().out_to(), graph.csr().out_to());
        assert_eq!(snap.graph.csr().out_elem(), graph.csr().out_elem());
        assert_eq!(snap.graph.csr().in_from(), graph.csr().in_from());
        assert!(snap.mined_examples.is_empty());
    }

    #[test]
    fn re_encoding_a_loaded_snapshot_is_byte_identical() {
        let (api, graph) = tiny_engine();
        let bytes = to_bytes(&api, &graph, &[]);
        let snap = from_bytes(&bytes).expect("round trip");
        assert_eq!(to_bytes(&snap.api, &snap.graph, &snap.mined_examples), bytes);
    }

    #[test]
    fn manifest_names_all_seven_sections() {
        let (api, graph) = tiny_engine();
        let bytes = to_bytes(&api, &graph, &[]);
        let m = manifest(&bytes).expect("manifest");
        assert_eq!(m.version, FORMAT_VERSION);
        assert_eq!(m.total_bytes, bytes.len() as u64);
        let names: Vec<&str> = m.sections.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            ["strings", "types", "members", "graph", "csr", "examples", "suffixes"]
        );
    }

    #[test]
    fn magic_sniff_and_bad_magic() {
        let (api, graph) = tiny_engine();
        let mut bytes = to_bytes(&api, &graph, &[]);
        assert!(is_snapshot(&bytes));
        assert!(!is_snapshot(b"{\"api\""));
        bytes[0] = b'J';
        assert!(matches!(from_bytes(&bytes), Err(StoreError::BadMagic { .. })));
    }

    #[test]
    fn future_versions_are_gated() {
        let (api, graph) = tiny_engine();
        let mut bytes = to_bytes(&api, &graph, &[]);
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        match from_bytes(&bytes) {
            Err(StoreError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected version gate, got {other:?}"),
        }
    }

    #[test]
    fn payload_bit_flip_is_a_checksum_mismatch() {
        let (api, graph) = tiny_engine();
        let mut bytes = to_bytes(&api, &graph, &[]);
        let last = bytes.len() - 1; // inside the suffixes payload (or its frame)
        bytes[last] ^= 0x01;
        assert!(matches!(
            from_bytes(&bytes),
            Err(StoreError::ChecksumMismatch { .. } | StoreError::Corrupt { .. })
        ));
    }
}
