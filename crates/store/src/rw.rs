//! Little-endian primitive encoding and a bounds-checked reader.
//!
//! Every read is guarded: the [`Reader`] knows which section it is
//! decoding, so running out of bytes yields a typed
//! [`StoreError::Truncated`] naming the section and offset, and count
//! prefixes are validated against the bytes actually remaining before any
//! allocation (a flipped length byte cannot OOM the loader).

use crate::error::StoreError;

/// Byte-buffer writer for section payloads. All integers are
/// little-endian.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh empty payload.
    #[must_use]
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consumes the writer, yielding the payload bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes (caller wrote a length prefix already).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a `usize` that must fit `u32` (arena indexes, counts).
    ///
    /// # Panics
    ///
    /// Panics if `v` exceeds `u32::MAX` — arena sizes are bounded by `u32`
    /// throughout the engine, so this indicates a bug, not bad input.
    pub fn index(&mut self, v: usize) {
        self.u32(u32::try_from(v).expect("arena index fits u32"));
    }
}

/// Bounds-checked little-endian reader over one section's payload.
#[derive(Debug)]
pub struct Reader<'a> {
    section: &'static str,
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a section payload.
    #[must_use]
    pub fn new(section: &'static str, buf: &'a [u8]) -> Self {
        Reader { section, buf, pos: 0 }
    }

    fn short(&self) -> StoreError {
        StoreError::Truncated { context: self.section, offset: self.pos }
    }

    /// A [`StoreError::Corrupt`] blamed on this reader's section.
    #[must_use]
    pub fn corrupt(&self, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt { section: self.section, detail: detail.into() }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at end of payload.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        let b = *self.buf.get(self.pos).ok_or_else(|| self.short())?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at end of payload.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        let raw = self.bytes(4)?;
        Ok(u32::from_le_bytes(raw.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at end of payload.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        let raw = self.bytes(8)?;
        Ok(u64::from_le_bytes(raw.try_into().expect("8 bytes")))
    }

    /// Reads `len` raw bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] if fewer remain.
    pub fn bytes(&mut self, len: usize) -> Result<&'a [u8], StoreError> {
        let end = self.pos.checked_add(len).ok_or_else(|| self.short())?;
        let slice = self.buf.get(self.pos..end).ok_or_else(|| self.short())?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads a `u32` element count and proves it plausible: `count *
    /// min_elem_bytes` must not exceed the bytes remaining, so callers can
    /// `Vec::with_capacity(count)` without trusting the file.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at end of payload;
    /// [`StoreError::Corrupt`] if the count cannot fit the payload.
    pub fn count(&mut self, min_elem_bytes: usize) -> Result<usize, StoreError> {
        let n = self.u32()? as usize;
        let need = n.checked_mul(min_elem_bytes).ok_or_else(|| {
            self.corrupt(format!("element count {n} overflows"))
        })?;
        if need > self.remaining() {
            return Err(self.corrupt(format!(
                "element count {n} needs {need} bytes but only {} remain",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads `count` consecutive little-endian `u32`s.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] if the payload ends first.
    pub fn u32_array(&mut self, count: usize) -> Result<Vec<u32>, StoreError> {
        let raw = self.bytes(count.checked_mul(4).ok_or_else(|| self.short())?)?;
        Ok(raw.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes"))).collect())
    }

    /// Asserts the payload is fully consumed (a section with trailing
    /// bytes was written by something else).
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when bytes remain.
    pub fn finish(&self) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(self.corrupt(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.bytes(b"xyz");
        let payload = w.into_bytes();
        let mut r = Reader::new("test", &payload);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.bytes(3).unwrap(), b"xyz");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_typed_with_offset() {
        let mut r = Reader::new("test", &[1, 2]);
        match r.u32() {
            Err(StoreError::Truncated { context: "test", offset: 0 }) => {}
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn absurd_counts_rejected_before_allocation() {
        let mut w = Writer::new();
        w.u32(u32::MAX); // claims 4 billion elements...
        let payload = w.into_bytes();
        let mut r = Reader::new("test", &payload);
        assert!(matches!(r.count(4), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let r = Reader::new("test", &[0]);
        assert!(matches!(r.finish(), Err(StoreError::Corrupt { .. })));
    }
}
