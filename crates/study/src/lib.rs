//! A simulated replication of the paper's user study (§6–§7, Figure 8).
//!
//! The original study put 13 human programmers in front of four
//! programming problems, two solved with PROSPECTOR and two without, and
//! measured completion time and answer quality. We cannot run humans, so
//! this crate substitutes **stochastic programmer models** whose two
//! conditions mirror the two search processes the paper describes:
//!
//! * **Without the tool** ([`simulate`]'s baseline arm): the programmer
//!   browses the *actual jungloid graph* member by member — the paper's
//!   "the IDE can easily show members of IFile" workflow. Starting from
//!   the problem's visible variables, they inspect out-edges in random
//!   order, paying a per-inspection cost; they recognize an edge that
//!   makes progress (distance-to-target decreases) only with some
//!   probability — and recognize *downcast* edges with much lower
//!   probability, modeling §4.1's "ISelection appears to be a dead end".
//!   Static methods of other classes (the paper's `JavaCore` trap) are
//!   also harder to find than members of a type in hand. After a
//!   difficulty-scaled budget they give up and reimplement, which costs
//!   extra time and risks the subtle bugs §7 reports.
//! * **With the tool**: the programmer invokes content assist, reads the
//!   ranked list to the desired solution's rank, verifies, and inserts.
//!
//! Absolute minutes are synthetic; the *shape* is the reproduction
//! target: tool users ≈2× faster on average (paper: 1.9), most users
//! individually faster with the tool (paper: 10 of 13), and tool users
//! reuse where baseline users reimplement (paper's Problem 1: of 8
//! baseline users only 2 found the wrapper; 3 copied elements; 3
//! reimplemented).

use jungloid_typesys::TyId;
use prospector_core::{NodeId, Prospector};
use prospector_corpora::problems::{user_study, StudyProblem};
use prospector_obs::SmallRng;

/// Simulation parameters. Times are minutes.
#[derive(Clone, Copy, Debug)]
pub struct StudyConfig {
    /// RNG seed (a study instance is deterministic in it).
    pub seed: u64,
    /// Number of simulated programmers (paper: 13).
    pub users: usize,
    /// Cost of inspecting one candidate member while browsing.
    pub inspect_minutes: f64,
    /// Probability of recognizing a useful ordinary member when seen.
    pub recognize_member: f64,
    /// Probability of recognizing a useful *static-method-of-another-
    /// class* edge (the `JavaCore` trap).
    pub recognize_static: f64,
    /// Probability of recognizing that a downcast would succeed.
    pub recognize_downcast: f64,
    /// Browsing budget before giving up, scaled by problem difficulty.
    pub browse_budget_minutes: f64,
    /// Wandering multiplier: scanning also visits wrong intermediate
    /// chains before the right member is found.
    pub branch_factor: f64,
    /// Effective extra search space for a static method or constructor of
    /// *some other class* (the programmer does not know where to look).
    pub static_space: f64,
    /// Effective extra search space for guessing a viable downcast.
    pub downcast_space: f64,
    /// Time to reimplement the feature after giving up.
    pub reimplement_minutes: f64,
    /// Probability a reimplementation is subtly wrong (§7's broken
    /// `Iterator.remove`).
    pub reimplement_bug: f64,
    /// Cost of reading one ranked suggestion.
    pub read_minutes: f64,
    /// Fixed cost to invoke the tool, verify the pick, and insert it.
    pub tool_overhead_minutes: f64,
    /// Shared fixed cost per problem (understanding the task, testing).
    pub task_overhead_minutes: f64,
    /// Probability a user "did not really understand how to use it until
    /// after completing the study" (§7 footnote 6): their tool trials run
    /// at a large multiplier.
    pub tool_confusion: f64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 0x5u64 << 32 | 0x2005,
            users: 13,
            inspect_minutes: 0.08,
            recognize_member: 0.5,
            recognize_static: 0.35,
            recognize_downcast: 0.15,
            browse_budget_minutes: 8.0,
            branch_factor: 2.5,
            static_space: 30.0,
            downcast_space: 25.0,
            reimplement_minutes: 6.0,
            reimplement_bug: 0.33,
            read_minutes: 0.2,
            tool_overhead_minutes: 2.2,
            task_overhead_minutes: 3.0,
            tool_confusion: 0.18,
        }
    }
}

/// How a trial's answer was classified (§7's categories).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Correct, based on reuse of the desired solution.
    CorrectReuse,
    /// Correct reuse, but of a less efficient route (e.g. copying into a
    /// list).
    CorrectInefficient,
    /// Correct behaviour obtained by reimplementation.
    Reimplemented,
    /// Subtly incorrect (usually a buggy reimplementation).
    Incorrect,
}

/// One user × problem measurement.
#[derive(Clone, Copy, Debug)]
pub struct Trial {
    /// User index (0-based).
    pub user: usize,
    /// Problem id (1-based, paper order).
    pub problem: u32,
    /// Condition: with PROSPECTOR?
    pub with_tool: bool,
    /// Completion time in minutes.
    pub minutes: f64,
    /// Answer classification.
    pub outcome: Outcome,
}

/// The full simulated study.
#[derive(Clone, Debug)]
pub struct StudyReport {
    /// All trials (one per user × problem).
    pub trials: Vec<Trial>,
}

impl StudyReport {
    /// Mean completion time for a problem under a condition.
    #[must_use]
    pub fn mean_minutes(&self, problem: u32, with_tool: bool) -> f64 {
        let xs: Vec<f64> = self
            .trials
            .iter()
            .filter(|t| t.problem == problem && t.with_tool == with_tool)
            .map(|t| t.minutes)
            .collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    }

    /// Standard deviation for a problem under a condition.
    #[must_use]
    pub fn sd_minutes(&self, problem: u32, with_tool: bool) -> f64 {
        let xs: Vec<f64> = self
            .trials
            .iter()
            .filter(|t| t.problem == problem && t.with_tool == with_tool)
            .map(|t| t.minutes)
            .collect();
        if xs.len() < 2 {
            return 0.0;
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
    }

    /// Per-user speedup: (total baseline minutes) / (total tool minutes).
    #[must_use]
    pub fn user_speedups(&self) -> Vec<f64> {
        let users = self.trials.iter().map(|t| t.user).max().map_or(0, |u| u + 1);
        (0..users)
            .map(|u| {
                let total = |with_tool: bool| -> f64 {
                    self.trials
                        .iter()
                        .filter(|t| t.user == u && t.with_tool == with_tool)
                        .map(|t| t.minutes)
                        .sum()
                };
                total(false) / total(true)
            })
            .collect()
    }

    /// Average of the per-user speedups (paper: 1.9).
    #[must_use]
    pub fn average_speedup(&self) -> f64 {
        let speedups = self.user_speedups();
        speedups.iter().sum::<f64>() / speedups.len().max(1) as f64
    }

    /// Outcome counts for one problem/condition.
    #[must_use]
    pub fn outcome_counts(&self, problem: u32, with_tool: bool) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for t in self.trials.iter().filter(|t| t.problem == problem && t.with_tool == with_tool) {
            let idx = match t.outcome {
                Outcome::CorrectReuse => 0,
                Outcome::CorrectInefficient => 1,
                Outcome::Reimplemented => 2,
                Outcome::Incorrect => 3,
            };
            counts[idx] += 1;
        }
        counts
    }

    /// Renders the Figure 8 analog: per-problem time summaries for both
    /// conditions plus the headline aggregates.
    #[must_use]
    pub fn format_figure8(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>22} {:>22}   outcomes with tool [reuse/ineff/reimpl/bug] vs without",
            "Problem", "with tool (min)", "without (min)"
        );
        let _ = writeln!(out, "{}", "-".repeat(110));
        for p in 1..=4u32 {
            let with = (self.mean_minutes(p, true), self.sd_minutes(p, true));
            let without = (self.mean_minutes(p, false), self.sd_minutes(p, false));
            let co_t = self.outcome_counts(p, true);
            let co_b = self.outcome_counts(p, false);
            let _ = writeln!(
                out,
                "Problem {p}  {:>12.1} ± {:<5.1} {:>13.1} ± {:<5.1}   {:?} vs {:?}",
                with.0, with.1, without.0, without.1, co_t, co_b
            );
        }
        let _ = writeln!(out, "{}", "-".repeat(110));
        let faster = self.user_speedups().iter().filter(|&&s| s > 1.05).count();
        let _ = writeln!(
            out,
            "average per-user speedup {:.2} (paper: 1.9); {}/{} users faster with the tool (paper: 10/13)",
            self.average_speedup(),
            faster,
            self.user_speedups().len()
        );
        out
    }
}

impl StudyReport {
    /// Renders a text scatter in the spirit of the actual Figure 8: one
    /// row per problem and condition, each user's completion time plotted
    /// as a dot on a shared minutes axis, with the mean marked `|`.
    #[must_use]
    pub fn format_scatter(&self) -> String {
        use std::fmt::Write as _;
        let max = self
            .trials
            .iter()
            .map(|t| t.minutes)
            .fold(1.0_f64, f64::max)
            .ceil();
        let width = 60usize;
        let col = |minutes: f64| -> usize {
            (((minutes / max) * (width as f64 - 1.0)).round() as usize).min(width - 1)
        };
        let mut out = String::new();
        let _ = writeln!(out, "time scatter (each `o` is one user; `|` is the mean; axis 0..{max:.0} min)");
        for p in 1..=4u32 {
            for with_tool in [true, false] {
                let mut row = vec![b' '; width];
                for t in self.trials.iter().filter(|t| t.problem == p && t.with_tool == with_tool)
                {
                    let c = col(t.minutes);
                    row[c] = if row[c] == b'o' { b'O' } else { b'o' };
                }
                let mean = self.mean_minutes(p, with_tool);
                let mc = col(mean);
                if row[mc] == b' ' {
                    row[mc] = b'|';
                }
                let _ = writeln!(
                    out,
                    "P{p} {:<8} [{}]",
                    if with_tool { "tool" } else { "no-tool" },
                    String::from_utf8_lossy(&row)
                );
            }
        }
        out
    }
}

/// Runs the simulated study over a built engine.
///
/// # Panics
///
/// Panics if a study problem references types missing from the engine's
/// API (a corpus bug).
#[must_use]
pub fn simulate(prospector: &Prospector, config: &StudyConfig) -> StudyReport {
    let problems = user_study();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut trials = Vec::new();
    for user in 0..config.users {
        // Skill multiplier ~ [0.6, 1.6): scales every time the user takes.
        let skill = 0.6 + rng.gen_f64();
        let confused = rng.gen_f64() < config.tool_confusion;
        // Random 2-of-4 assignment to the tool condition (paper §6).
        let mut with_tool = [false; 4];
        let first = rng.gen_range(0..4);
        let mut second = rng.gen_range(0..3);
        if second >= first {
            second += 1;
        }
        with_tool[first] = true;
        with_tool[second] = true;

        for (pi, problem) in problems.iter().enumerate() {
            let trial = if with_tool[pi] {
                let mut t = run_with_tool(prospector, problem, skill, config, &mut rng, user);
                if confused {
                    t.minutes *= 1.8 + rng.gen_f64();
                }
                t
            } else {
                run_baseline(prospector, problem, skill, config, &mut rng, user)
            };
            trials.push(trial);
        }
    }
    StudyReport { trials }
}

fn assist_rank(prospector: &Prospector, problem: &StudyProblem, needles: &[&str]) -> Option<usize> {
    let api = prospector.api();
    let visible: Vec<(&str, TyId)> = problem
        .visible
        .iter()
        .map(|(name, ty)| (*name, api.types().resolve(ty).expect("study type resolves")))
        .collect();
    let tout = api.types().resolve(problem.tout).expect("study tout resolves");
    let result = prospector.assist(&visible, tout).expect("study query valid");
    result.rank_where(|s| needles.iter().all(|n| s.code.contains(n)))
}

fn run_with_tool(
    prospector: &Prospector,
    problem: &StudyProblem,
    skill: f64,
    config: &StudyConfig,
    rng: &mut SmallRng,
    user: usize,
) -> Trial {
    let rank = assist_rank(prospector, problem, problem.desired);
    let (minutes, outcome) = match rank {
        Some(r) => {
            let read = config.read_minutes * r as f64;
            let jitter = 0.8 + 0.4 * rng.gen_f64();
            (
                (config.task_overhead_minutes + config.tool_overhead_minutes + read)
                    * problem.difficulty.sqrt()
                    * skill
                    * jitter,
                Outcome::CorrectReuse,
            )
        }
        None => {
            // The tool has no answer: fall back to browsing.
            let t = run_baseline(prospector, problem, skill, config, rng, user);
            (t.minutes + config.tool_overhead_minutes, t.outcome)
        }
    };
    Trial { user, problem: problem.id, with_tool: true, minutes, outcome }
}

/// Simulates manually *discovering* one concrete solution jungloid: for
/// each of its steps, the programmer must find the right member among the
/// out-edges of the type in hand (scan cost proportional to the node's
/// real out-degree) and recognize it as useful (kind-dependent
/// probability — instance members are browsable, static methods of other
/// classes are the `JavaCore` trap, downcasts look like dead ends).
///
/// Returns `(minutes_spent, success)`; failure happens when the budget
/// runs out or the programmer never recognizes a step.
fn discovery_minutes(
    prospector: &Prospector,
    jungloid: &prospector_core::Jungloid,
    skill: f64,
    difficulty: f64,
    budget: f64,
    config: &StudyConfig,
    rng: &mut SmallRng,
) -> (f64, bool) {
    let api = prospector.api();
    let graph = prospector.graph();
    let mut minutes = 0.0;
    for elem in jungloid.elems.iter().filter(|e| !e.is_widen()) {
        let node = NodeId::Ty(elem.input_ty(api));
        let mut space = graph.out_edges(node).len().max(4) as f64;
        // Harder problems mean less familiar APIs: recognition odds
        // shrink with difficulty.
        let recognize = match elem {
            e if e.is_downcast() => {
                space += config.downcast_space;
                config.recognize_downcast
            }
            jungloid_apidef::ElemJungloid::Call { method, .. } => {
                let def = api.method(*method);
                if def.is_static || def.is_constructor || elem.input_ty(api) == api.types().void()
                {
                    space += config.static_space;
                    config.recognize_static
                } else {
                    config.recognize_member
                }
            }
            _ => config.recognize_member,
        };
        // Repeated passes over the candidate space until the right entry
        // is both seen and recognized; wandering inflates each pass.
        let recognize = recognize / difficulty;
        let mut recognized = false;
        for _pass in 0..8 {
            let scanned = (1.0 + rng.gen_f64() * space) * config.branch_factor;
            minutes += scanned * config.inspect_minutes * skill;
            if minutes > budget {
                return (budget, false);
            }
            if rng.gen_f64() < recognize {
                recognized = true;
                break;
            }
        }
        if !recognized {
            return (minutes, false);
        }
    }
    (minutes, true)
}

/// The no-tool arm: browse for the desired solution; failing that, maybe
/// find the inefficient alternative; failing that, reimplement.
fn run_baseline(
    prospector: &Prospector,
    problem: &StudyProblem,
    skill: f64,
    config: &StudyConfig,
    rng: &mut SmallRng,
    user: usize,
) -> Trial {
    let budget = config.browse_budget_minutes * problem.difficulty.sqrt();
    let mut minutes = config.task_overhead_minutes * skill;

    let jungloid_for =
        |needles: &[&str], tout_name: &str| -> Option<prospector_core::Jungloid> {
            if needles.is_empty() {
                return None;
            }
            let api = prospector.api();
            let visible: Vec<(&str, TyId)> = problem
                .visible
                .iter()
                .map(|(name, ty)| (*name, api.types().resolve(ty).expect("study type resolves")))
                .collect();
            let tout = api.types().resolve(tout_name).expect("study tout resolves");
            let result = prospector.assist(&visible, tout).expect("study query valid");
            result
                .suggestions
                .iter()
                .find(|s| needles.iter().all(|n| s.code.contains(n)))
                .map(|s| s.jungloid.clone())
        };

    // Programmers try the *obvious* route first (the inefficient
    // alternative, when one exists), then hunt for the best one, then
    // give up and reimplement.
    let mut found = None;
    let mut remaining = budget;
    if let Some(j) =
        jungloid_for(problem.inefficient, problem.inefficient_tout.unwrap_or(problem.tout))
    {
        let (t, ok) =
            discovery_minutes(prospector, &j, skill, problem.difficulty, remaining * 0.35, config, rng);
        minutes += t;
        remaining -= t;
        if ok {
            found = Some(Outcome::CorrectInefficient);
        }
    }
    if found.is_none() {
        if let Some(j) = jungloid_for(problem.desired, problem.tout) {
            let (t, ok) =
                discovery_minutes(prospector, &j, skill, problem.difficulty, remaining, config, rng);
            minutes += t;
            if ok {
                found = Some(Outcome::CorrectReuse);
            }
        }
    }
    let outcome = match found {
        Some(Outcome::CorrectReuse) if rng.gen_f64() < problem.subtle_bug => {
            Outcome::Incorrect
        }
        Some(o) => o,
        None => {
            minutes += config.reimplement_minutes * skill * problem.difficulty.sqrt();
            if rng.gen_f64() < config.reimplement_bug {
                Outcome::Incorrect
            } else {
                Outcome::Reimplemented
            }
        }
    };
    Trial { user, problem: problem.id, with_tool: false, minutes, outcome }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prospector_corpora::build_default;

    fn report() -> StudyReport {
        let p = build_default();
        simulate(&p, &StudyConfig::default())
    }

    #[test]
    fn every_user_solves_two_and_two() {
        let r = report();
        assert_eq!(r.trials.len(), 13 * 4);
        for u in 0..13 {
            let with: Vec<_> =
                r.trials.iter().filter(|t| t.user == u && t.with_tool).collect();
            assert_eq!(with.len(), 2, "user {u} tool assignment");
        }
    }

    #[test]
    fn speedup_matches_paper_shape() {
        let r = report();
        let avg = r.average_speedup();
        assert!((1.4..=2.8).contains(&avg), "avg speedup {avg} outside the paper's ballpark");
        let faster = r.user_speedups().iter().filter(|&&s| s > 1.05).count();
        assert!(faster >= 9, "only {faster}/13 users faster with the tool");
    }

    #[test]
    fn tool_condition_reuses() {
        let r = report();
        for p in 1..=4 {
            let [reuse, _, reimpl, bug] = r.outcome_counts(p, true);
            assert!(reuse >= 1);
            assert_eq!(reimpl + bug, 0, "tool users should not reimplement problem {p}");
        }
    }

    #[test]
    fn baseline_sometimes_reimplements_problem1() {
        // §7: of 8 non-tool users on problem 1, 3 reimplemented and only
        // 2 found the wrapper. Assert the qualitative split: baseline
        // shows a mix of reuse and non-reuse across the study.
        let r = report();
        let mut non_reuse = 0;
        let mut total = 0;
        for p in 1..=4 {
            let [_, ineff, reimpl, bug] = r.outcome_counts(p, false);
            non_reuse += ineff + reimpl + bug;
            total += r.outcome_counts(p, false).iter().sum::<usize>();
        }
        assert!(total > 0);
        assert!(non_reuse >= total / 4, "baseline should frequently fail to reuse");
    }

    #[test]
    fn deterministic_in_seed() {
        let p = build_default();
        let a = simulate(&p, &StudyConfig::default());
        let b = simulate(&p, &StudyConfig::default());
        assert_eq!(a.trials.len(), b.trials.len());
        for (x, y) in a.trials.iter().zip(&b.trials) {
            assert!((x.minutes - y.minutes).abs() < 1e-12);
            assert_eq!(x.outcome, y.outcome);
        }
        let c = simulate(&p, &StudyConfig { seed: 7, ..StudyConfig::default() });
        assert!(a.trials.iter().zip(&c.trials).any(|(x, y)| (x.minutes - y.minutes).abs() > 1e-9));
    }

    #[test]
    fn figure8_renders() {
        let r = report();
        let s = r.format_figure8();
        assert!(s.contains("Problem 1"));
        assert!(s.contains("average per-user speedup"));
    }

    #[test]
    fn scatter_renders_all_rows() {
        let r = report();
        let s = r.format_scatter();
        // 4 problems x 2 conditions.
        assert_eq!(s.lines().filter(|l| l.starts_with('P')).count(), 8);
        assert!(s.contains("P1 tool"));
        assert!(s.contains("P4 no-tool"));
        // Every row has at least one user dot.
        for line in s.lines().filter(|l| l.starts_with('P')) {
            assert!(line.contains('o') || line.contains('O'), "{line}");
        }
    }
}
