//! A dependency-free stand-in for the slice of the Criterion API the
//! `benches/` harnesses use: `Criterion::default().configure_from_args()`,
//! `benchmark_group`, `sample_size`, `bench_function`, `Bencher::iter`,
//! `finish`, `final_summary`, and the `criterion_group!` macro.
//!
//! Each `bench_function` runs one untimed warm-up iteration, then
//! `sample_size` timed iterations, and prints min / mean / max wall time.
//! Statistical machinery (outlier rejection, regression detection) is
//! intentionally absent — the benches here are reproduction reports, not
//! CI gates.

use std::time::{Duration, Instant};

/// Top-level handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Accepts (and ignores) Criterion's CLI arguments so harness `main`
    /// functions keep their shape.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Prints nothing; per-bench lines are emitted as they complete.
    pub fn final_summary(self) {}

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_owned(), sample_size: 10 }
    }
}

/// A named collection of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { iters: self.sample_size, samples: Vec::new() };
        f(&mut bencher);
        let samples = bencher.samples;
        if samples.is_empty() {
            println!("{}/{id}: no samples (Bencher::iter never called)", self.name);
            return self;
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / u32::try_from(samples.len()).expect("fits");
        println!(
            "{}/{id}: time [{} {} {}] ({} samples)",
            self.name,
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            samples.len()
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the hot loop.
#[derive(Debug)]
pub struct Bencher {
    iters: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once untimed (warm-up), then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.iters {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Mirrors `criterion_group!`: defines a function running each benchmark
/// function against a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:ident),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_requested_samples() {
        let mut c = Criterion::default().configure_from_args();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function("counts", |b| {
            b.iter(|| {
                calls += 1;
                calls
            });
        });
        group.finish();
        // 1 warm-up + 3 timed.
        assert_eq!(calls, 4);
    }

    #[test]
    fn sample_size_never_zero() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(0);
        let mut calls = 0usize;
        group.bench_function("still_runs", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 2);
    }

    #[test]
    fn durations_format_with_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.000 µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.000 s");
    }

    criterion_group!(example_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("macro");
        group.sample_size(1);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn macro_defines_runnable_group() {
        example_group();
    }
}
