//! Snapshot I/O — how fast the engine's on-disk formats save and load,
//! and what warm-starting buys over rebuilding.
//!
//! Three columns per format (JSON debug vs `.pspk` binary): save time,
//! load time, and bytes on disk; plus the cold-build baseline the binary
//! load replaces. The run writes a machine-readable baseline to
//! `BENCH_snapshot.json` at the repository root (override with
//! `BENCH_SNAPSHOT_OUT`).
//!
//! Run with `cargo bench -p bench --bench snapshot_io`; set
//! `PROSPECTOR_BENCH_QUICK=1` (or pass `--quick`) for a CI-sized smoke
//! run.

use std::time::Instant;

use prospector_corpora::{build, BuildOptions};
use prospector_obs::Json;

fn quick_mode() -> bool {
    std::env::var_os("PROSPECTOR_BENCH_QUICK").is_some()
        || std::env::args().any(|a| a == "--quick")
}

/// Best-of-`rounds` wall time for `f`, in microseconds.
fn best_us<T>(rounds: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..rounds {
        let t = Instant::now();
        let value = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e6);
        last = Some(value);
    }
    (best, last.expect("rounds >= 1"))
}

fn main() {
    let quick = quick_mode();
    let rounds = if quick { 2 } else { 5 };

    println!("\n=== snapshot I/O (JSON debug vs .pspk binary) ===\n");

    // Cold-build baseline: what a server pays when it has no index.
    let (build_us, built) =
        best_us(1, || build(&BuildOptions::default()).expect("assembles"));
    let mined = built.mine_report.map(|r| r.examples).unwrap_or_default();
    let engine = built.prospector;
    println!("cold build + mine + generalize: {build_us:10.0} us");

    let dir = std::env::temp_dir().join("prospector-bench-snapshot");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json_path = dir.join("engine.json");
    let bin_path = dir.join("engine.pspk");

    let (json_save_us, ()) = best_us(rounds, || {
        prospector_core::persist::save_file(&json_path, engine.api(), engine.graph())
            .expect("JSON saves");
    });
    let json_bytes = std::fs::metadata(&json_path).expect("saved").len();
    let (json_load_us, json_loaded) = best_us(rounds, || {
        prospector_core::persist::load_file(&json_path).expect("JSON loads")
    });
    println!(
        "JSON debug:  save {json_save_us:10.0} us   load {json_load_us:10.0} us   {json_bytes:>9} bytes"
    );

    let (bin_save_us, _) = best_us(rounds, || {
        prospector_store::save_file(&bin_path, engine.api(), engine.graph(), &mined)
            .expect("binary saves")
    });
    let bin_bytes = std::fs::metadata(&bin_path).expect("saved").len();
    let (bin_load_us, bin_loaded) = best_us(rounds, || {
        prospector_store::load_file(&bin_path).expect("binary loads").0
    });
    println!(
        "binary .pspk: save {bin_save_us:10.0} us   load {bin_load_us:10.0} us   {bin_bytes:>9} bytes"
    );

    // Both loaders must agree with the live engine before their times
    // mean anything.
    assert_eq!(json_loaded.graph.edge_count(), engine.graph().edge_count());
    assert_eq!(bin_loaded.graph.edge_count(), engine.graph().edge_count());
    assert_eq!(bin_loaded.graph.csr().out_to(), engine.graph().csr().out_to());

    let load_speedup = json_load_us / bin_load_us;
    let vs_build = build_us / bin_load_us;
    println!(
        "\nbinary load: {load_speedup:.2}x faster than JSON load, {vs_build:.2}x faster than a cold build\n"
    );
    assert!(
        bin_load_us < json_load_us,
        "binary load must beat the JSON debug path ({bin_load_us:.0} us vs {json_load_us:.0} us)"
    );

    let round1 = |x: f64| (x * 10.0).round() / 10.0;
    let doc = Json::obj(vec![
        ("bench", Json::Str("snapshot_io".to_owned())),
        ("rounds", Json::num_u(rounds as u64)),
        ("build_us", Json::Num(round1(build_us))),
        (
            "json",
            Json::obj(vec![
                ("save_us", Json::Num(round1(json_save_us))),
                ("load_us", Json::Num(round1(json_load_us))),
                ("bytes", Json::num_u(json_bytes)),
            ]),
        ),
        (
            "binary",
            Json::obj(vec![
                ("save_us", Json::Num(round1(bin_save_us))),
                ("load_us", Json::Num(round1(bin_load_us))),
                ("bytes", Json::num_u(bin_bytes)),
            ]),
        ),
        ("load_speedup", Json::Num((load_speedup * 100.0).round() / 100.0)),
        ("load_vs_build", Json::Num((vs_build * 100.0).round() / 100.0)),
        ("quick", Json::Bool(quick)),
    ]);
    let out = std::env::var("BENCH_SNAPSHOT_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_snapshot.json").to_owned()
    });
    std::fs::write(&out, doc.to_text()).expect("baseline file writes");
    println!("wrote {out}");

    std::fs::remove_file(&json_path).ok();
    std::fs::remove_file(&bin_path).ok();
}
