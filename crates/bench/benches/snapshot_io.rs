//! Snapshot I/O — how fast the engine's on-disk formats save and load,
//! and what warm-starting buys over rebuilding.
//!
//! Columns: the JSON debug format, the v1 `.pspk` (decode-everything)
//! baseline, the v2 `.pspk` zero-copy load (owned read and mmap), and
//! the first query answered after each warm start; plus the cold-build
//! baseline every load replaces. The run writes a machine-readable
//! baseline to `BENCH_snapshot.json` at the repository root (override
//! with `BENCH_SNAPSHOT_OUT`), including `zero_copy_speedup` — v1 load
//! time over v2 load time.
//!
//! Run with `cargo bench -p bench --bench snapshot_io`; set
//! `PROSPECTOR_BENCH_QUICK=1` (or pass `--quick`) for a CI-sized smoke
//! run.

use std::time::Instant;

use prospector_core::Prospector;
use prospector_corpora::{build, BuildOptions};
use prospector_obs::Json;

fn quick_mode() -> bool {
    std::env::var_os("PROSPECTOR_BENCH_QUICK").is_some()
        || std::env::args().any(|a| a == "--quick")
}

/// Best-of-`rounds` wall time for `f`, in microseconds.
fn best_us<T>(rounds: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..rounds {
        let t = Instant::now();
        let value = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e6);
        last = Some(value);
    }
    (best, last.expect("rounds >= 1"))
}

/// Warm-start an engine from a just-loaded snapshot and answer one
/// flagship query (`IFile -> ASTNode`). Returns the suggestion count so
/// the work cannot be optimized away.
fn first_query(snap: prospector_store::Snapshot) -> usize {
    let engine = Prospector::from_parts(snap.api, snap.graph);
    let tin = engine.api().types().resolve("IFile").expect("IFile resolves");
    let tout = engine.api().types().resolve("ASTNode").expect("ASTNode resolves");
    engine.query(tin, tout).expect("query answers").suggestions.len()
}

fn main() {
    let quick = quick_mode();
    let rounds = if quick { 2 } else { 5 };

    println!("\n=== snapshot I/O (JSON debug vs .pspk binary) ===\n");

    // Cold-build baseline: what a server pays when it has no index.
    let (build_us, built) =
        best_us(1, || build(&BuildOptions::default()).expect("assembles"));
    let mined = built.mine_report.map(|r| r.examples).unwrap_or_default();
    let engine = built.prospector;
    println!("cold build + mine + generalize: {build_us:10.0} us");

    let dir = std::env::temp_dir().join("prospector-bench-snapshot");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json_path = dir.join("engine.json");
    let bin_path = dir.join("engine.pspk");
    let v1_path = dir.join("engine-v1.pspk");

    let (json_save_us, ()) = best_us(rounds, || {
        prospector_core::persist::save_file(&json_path, engine.api(), engine.graph())
            .expect("JSON saves");
    });
    let json_bytes = std::fs::metadata(&json_path).expect("saved").len();
    let (json_load_us, json_loaded) = best_us(rounds, || {
        prospector_core::persist::load_file(&json_path).expect("JSON loads")
    });
    println!(
        "JSON debug:  save {json_save_us:10.0} us   load {json_load_us:10.0} us   {json_bytes:>9} bytes"
    );

    // v1: the decode-everything baseline the zero-copy loader replaces.
    std::fs::write(&v1_path, prospector_store::to_bytes_v1(engine.api(), engine.graph(), &mined))
        .expect("v1 snapshot writes");
    let v1_bytes = std::fs::metadata(&v1_path).expect("saved").len();
    let (v1_load_us, v1_loaded) = best_us(rounds, || {
        prospector_store::load_file(&v1_path).expect("v1 loads").0
    });
    println!(
        "binary v1:   {:>16} load {v1_load_us:10.0} us   {v1_bytes:>9} bytes", ""
    );

    let (bin_save_us, _) = best_us(rounds, || {
        prospector_store::save_file(&bin_path, engine.api(), engine.graph(), &mined)
            .expect("binary saves")
    });
    let bin_bytes = std::fs::metadata(&bin_path).expect("saved").len();
    let (bin_load_us, bin_loaded) = best_us(rounds, || {
        prospector_store::load_file(&bin_path).expect("binary loads").0
    });
    println!(
        "binary v2:   save {bin_save_us:10.0} us   load {bin_load_us:10.0} us   {bin_bytes:>9} bytes"
    );

    // The zero-copy load: validate header + section CRCs once and hand
    // out borrowed views — O(sections checksummed), no per-element work.
    let (map_us, mapped) = best_us(rounds, || {
        let m = prospector_store::MappedSnapshot::map(&bin_path).expect("binary maps");
        assert_eq!(m.manifest().sections.len(), 7);
        m.is_mapped()
    });
    println!(
        "binary v2 zero-copy (validate + mmap): {map_us:7.0} us   (mapped: {mapped})"
    );

    // Warm start to first answer: load + engine assembly + one query.
    let (first_query_v1_us, n1) = best_us(rounds, || {
        first_query(prospector_store::load_file(&v1_path).expect("v1 loads").0)
    });
    let (first_query_v2_us, n2) = best_us(rounds, || {
        let m = prospector_store::MappedSnapshot::map(&bin_path).expect("binary maps");
        first_query(m.thaw().expect("binary thaws"))
    });
    assert_eq!(n1, n2, "warm-started engines must answer identically");
    println!(
        "first query:  v1 {first_query_v1_us:9.0} us   v2+mmap {first_query_v2_us:7.0} us"
    );

    // Every loader must agree with the live engine before its time
    // means anything.
    assert_eq!(json_loaded.graph.edge_count(), engine.graph().edge_count());
    assert_eq!(v1_loaded.graph.csr().out_to(), engine.graph().csr().out_to());
    assert_eq!(bin_loaded.graph.edge_count(), engine.graph().edge_count());
    assert_eq!(bin_loaded.graph.csr().out_to(), engine.graph().csr().out_to());

    let load_speedup = json_load_us / bin_load_us;
    let vs_build = build_us / bin_load_us;
    // The headline number: the v2 zero-copy (validate-only) load against
    // the v1 decode-everything load it replaces. The deferred owned-API
    // cost is not hidden — it shows up in `first_query.v2_mmap_us`.
    let zero_copy_speedup = v1_load_us / map_us;
    println!(
        "\nv2 full load: {load_speedup:.2}x faster than JSON load, {vs_build:.2}x faster than a cold build"
    );
    println!(
        "v2 zero-copy (validate-only) load: {zero_copy_speedup:.2}x faster than the v1 decode\n"
    );
    assert!(
        bin_load_us < json_load_us,
        "binary load must beat the JSON debug path ({bin_load_us:.0} us vs {json_load_us:.0} us)"
    );
    assert!(
        map_us < v1_load_us,
        "zero-copy v2 load must beat the v1 decode ({map_us:.0} us vs {v1_load_us:.0} us)"
    );
    if !quick {
        assert!(
            zero_copy_speedup >= 5.0,
            "zero-copy v2 load must be >= 5x the v1 decode (got {zero_copy_speedup:.2}x)"
        );
    }

    let round1 = |x: f64| (x * 10.0).round() / 10.0;
    let doc = Json::obj(vec![
        ("bench", Json::Str("snapshot_io".to_owned())),
        ("rounds", Json::num_u(rounds as u64)),
        ("build_us", Json::Num(round1(build_us))),
        (
            "json",
            Json::obj(vec![
                ("save_us", Json::Num(round1(json_save_us))),
                ("load_us", Json::Num(round1(json_load_us))),
                ("bytes", Json::num_u(json_bytes)),
            ]),
        ),
        (
            "binary_v1",
            Json::obj(vec![
                ("load_us", Json::Num(round1(v1_load_us))),
                ("bytes", Json::num_u(v1_bytes)),
            ]),
        ),
        (
            "binary",
            Json::obj(vec![
                ("save_us", Json::Num(round1(bin_save_us))),
                ("load_us", Json::Num(round1(bin_load_us))),
                ("bytes", Json::num_u(bin_bytes)),
            ]),
        ),
        (
            "zero_copy",
            Json::obj(vec![
                ("map_us", Json::Num(round1(map_us))),
                ("mapped", Json::Bool(mapped)),
            ]),
        ),
        (
            "first_query",
            Json::obj(vec![
                ("v1_us", Json::Num(round1(first_query_v1_us))),
                ("v2_mmap_us", Json::Num(round1(first_query_v2_us))),
            ]),
        ),
        ("load_speedup", Json::Num((load_speedup * 100.0).round() / 100.0)),
        ("zero_copy_speedup", Json::Num((zero_copy_speedup * 100.0).round() / 100.0)),
        ("load_vs_build", Json::Num((vs_build * 100.0).round() / 100.0)),
        ("quick", Json::Bool(quick)),
    ]);
    let out = std::env::var("BENCH_SNAPSHOT_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_snapshot.json").to_owned()
    });
    std::fs::write(&out, doc.to_text()).expect("baseline file writes");
    println!("wrote {out}");

    std::fs::remove_file(&json_path).ok();
    std::fs::remove_file(&bin_path).ok();
    std::fs::remove_file(&v1_path).ok();
}
