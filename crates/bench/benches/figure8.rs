//! Experiment E2 — regenerates **Figure 8** (§7): per-problem completion
//! times with and without PROSPECTOR from the simulated user study, plus
//! the headline aggregates (average speedup ≈ 1.9; most users faster with
//! the tool; reuse vs. reimplementation split). Then benchmarks one full
//! study simulation.
//!
//! Run with `cargo bench -p bench --bench figure8`.

use bench::{criterion_group, Criterion};
use prospector_corpora::build_default;
use prospector_study::{simulate, StudyConfig};

fn print_report() {
    let prospector = build_default();
    println!("\n=== Figure 8 (paper §7) — simulated user study ===\n");
    let report = simulate(&prospector, &StudyConfig::default());
    println!("{}", report.format_figure8());
    println!("{}", report.format_scatter());

    // Stability across seeds: the shape must not be a lucky draw.
    println!("speedup across 10 seeds:");
    let mut speedups = Vec::new();
    for seed in 0..10u64 {
        let r = simulate(&prospector, &StudyConfig { seed, ..StudyConfig::default() });
        speedups.push(r.average_speedup());
    }
    let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!(
        "  per-seed: {:?}\n  mean of means: {mean:.2} (paper: 1.9)\n",
        speedups.iter().map(|s| (s * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
}

fn bench_simulation(c: &mut Criterion) {
    let prospector = build_default();
    let mut group = c.benchmark_group("figure8");
    group.sample_size(10);
    group.bench_function("simulate_13_users", |b| {
        b.iter(|| {
            let r = simulate(&prospector, &StudyConfig::default());
            std::hint::black_box(r.average_speedup())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_simulation);

fn main() {
    print_report();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
