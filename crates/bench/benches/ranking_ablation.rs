//! Experiment E6 / ablation — how much each ranking refinement of §3.2
//! contributes. Four configurations re-run Table 1:
//!
//! * `full`        — the paper's heuristic (free variables cost 2,
//!   package-crossing and output-generality tie-breaks);
//! * `length-only` — plain shortest-first (the paper's "early prototype
//!   that returned an arbitrarily chosen shortest jungloid");
//! * `no-crossings` — disables the `HTMLParser` tie-break;
//! * `no-generality` — disables the `XMLEditor` tie-break.
//!
//! Also checks the two §3.2 anecdotes directly: the `java.io` idiom must
//! outrank the `org.apache.lucene` detour only when crossings are on, and
//! `(FileInputStream, BufferedReader)` has many same-length jungloids.
//!
//! Run with `cargo bench -p bench --bench ranking_ablation`.

use bench::{criterion_group, Criterion};
use prospector_core::RankOptions;
use prospector_corpora::report::run_table1;
use prospector_corpora::{build_default, problems};

const CONFIGS: [(&str, RankOptions); 4] = [
    (
        "full",
        RankOptions { free_ref_cost: 2, free_prim_cost: 0, use_crossings: true, use_generality: true },
    ),
    (
        "length-only",
        RankOptions { free_ref_cost: 0, free_prim_cost: 0, use_crossings: false, use_generality: false },
    ),
    (
        "no-crossings",
        RankOptions { free_ref_cost: 2, free_prim_cost: 0, use_crossings: false, use_generality: true },
    ),
    (
        "no-generality",
        RankOptions { free_ref_cost: 2, free_prim_cost: 0, use_crossings: true, use_generality: false },
    ),
];

fn print_report() {
    println!("\n=== Ranking ablation over Table 1 ===\n");
    println!(
        "{:<14} {:>7} {:>8} {:>11}  per-problem desired ranks (No = not in top 10)",
        "config", "found", "rank-1", "mean rank"
    );
    for (name, opts) in CONFIGS {
        let mut engine = build_default();
        engine.ranking = opts;
        let rows = run_table1(&engine);
        let found = rows.iter().filter(|r| r.rank.is_some()).count();
        let rank1 = rows.iter().filter(|r| r.rank == Some(1)).count();
        let ranks: Vec<usize> = rows.iter().filter_map(|r| r.rank).collect();
        let mean = ranks.iter().sum::<usize>() as f64 / ranks.len().max(1) as f64;
        let per: Vec<String> = rows
            .iter()
            .map(|r| r.rank.map_or_else(|| "No".into(), |k| k.to_string()))
            .collect();
        println!(
            "{name:<14} {found:>4}/20 {rank1:>5}/20 {mean:>11.2}  [{}]",
            per.join(" ")
        );
    }

    // §3.2 anecdote: the idiom vs the HTMLParser detour.
    println!("\n§3.2 anecdote — (InputStream, BufferedReader), top 3 per config:");
    for (name, opts) in CONFIGS {
        let mut engine = build_default();
        engine.ranking = opts;
        let api = engine.api();
        let tin = api.types().resolve("InputStream").unwrap();
        let tout = api.types().resolve("BufferedReader").unwrap();
        let result = engine.query(tin, tout).unwrap();
        println!("  {name}:");
        for s in result.suggestions.iter().take(3) {
            println!("    {}", s.code);
        }
        let idiom = result.rank_where(|s| s.code.contains("new InputStreamReader("));
        let detour = result.rank_where(|s| s.code.contains("HTMLParser"));
        println!("    idiom rank {idiom:?}, HTMLParser detour rank {detour:?}");
        if opts.use_crossings {
            assert!(idiom < detour, "{name}: crossings should favor the idiom");
        }
    }
    println!();
}

fn bench_full_vs_length_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("ranking_ablation");
    group.sample_size(10);
    for (name, opts) in [CONFIGS[0], CONFIGS[1]] {
        let mut engine = build_default();
        engine.ranking = opts;
        let api = engine.api();
        let pairs: Vec<_> = problems::table1()
            .iter()
            .map(|p| {
                (api.types().resolve(p.tin).unwrap(), api.types().resolve(p.tout).unwrap())
            })
            .collect();
        group.bench_function(format!("table1_{name}"), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for &(tin, tout) in &pairs {
                    total += engine.query(tin, tout).unwrap().suggestions.len();
                }
                std::hint::black_box(total)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_vs_length_only);

fn main() {
    print_report();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
