//! Batched query throughput — queries/sec for the Table 1 mix answered
//! serially versus through [`Prospector::query_batch_threads`] at 1, 2,
//! 4, and 8 workers, over the shared immutable CSR graph.
//!
//! Besides the human-readable report, the run writes a machine-readable
//! baseline to `BENCH_batch.json` at the repository root (override the
//! path with `BENCH_BATCH_OUT`), recording qps per thread count, the
//! 8-thread speedup over serial, the host CPU count (a 1-CPU host cannot
//! show parallel speedup regardless of the engine), and whether every
//! batched result was byte-identical to the serial loop.
//!
//! Run with `cargo bench -p bench --bench batch_throughput`; set
//! `PROSPECTOR_BENCH_QUICK=1` (or pass `--quick`) for a CI-sized smoke
//! run.
//!
//! [`Prospector::query_batch_threads`]: prospector_core::Prospector::query_batch_threads

use std::time::Instant;

use jungloid_typesys::TyId;
use prospector_core::Prospector;
use prospector_corpora::{build, problems, BuildOptions};
use prospector_obs::Json;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn quick_mode() -> bool {
    std::env::var_os("PROSPECTOR_BENCH_QUICK").is_some()
        || std::env::args().any(|a| a == "--quick")
}

/// The Table 1 problem mix, repeated so the batch comfortably exceeds
/// any worker count and exercises cache reuse mid-flight.
fn query_mix(engine: &Prospector, repeats: usize) -> Vec<(TyId, TyId)> {
    let api = engine.api();
    let base: Vec<(TyId, TyId)> = problems::table1()
        .iter()
        .map(|p| {
            (
                api.types().resolve(p.tin).expect("table1 tin resolves"),
                api.types().resolve(p.tout).expect("table1 tout resolves"),
            )
        })
        .collect();
    let mut queries = Vec::with_capacity(base.len() * repeats);
    for _ in 0..repeats {
        queries.extend_from_slice(&base);
    }
    queries
}

/// Ranked codes per query — the comparable fingerprint of a result set.
fn serial_reference(engine: &Prospector, queries: &[(TyId, TyId)]) -> Vec<Vec<String>> {
    queries
        .iter()
        .map(|&(tin, tout)| {
            engine
                .query(tin, tout)
                .expect("table1 queries succeed")
                .suggestions
                .iter()
                .map(|s| s.code.clone())
                .collect()
        })
        .collect()
}

fn main() {
    let quick = quick_mode();
    let repeats = if quick { 2 } else { 10 };
    let rounds = if quick { 1 } else { 3 };
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    println!("\n=== batch throughput (Table 1 mix, CSR graph) ===\n");
    let mut engine = build(&BuildOptions::default()).expect("assembles").prospector;
    // This bench measures the pipeline itself; with the result cache on,
    // every repeat after the first would be a lookup, not a query.
    engine.cache_results = false;
    let queries = query_mix(&engine, repeats);
    println!(
        "host cpus: {cpus}; batch: {} queries ({} distinct problems x {repeats})",
        queries.len(),
        problems::table1().len()
    );

    // Warm pass: distance fields for every target enter the sharded
    // cache, so every configuration below measures steady-state.
    let reference = serial_reference(&engine, &queries);

    // Serial baseline: best of `rounds` plain query() loops.
    let mut serial_qps: f64 = 0.0;
    for _ in 0..rounds {
        let t = Instant::now();
        let got = serial_reference(&engine, &queries);
        let qps = queries.len() as f64 / t.elapsed().as_secs_f64();
        assert_eq!(got, reference, "serial run must be deterministic");
        serial_qps = serial_qps.max(qps);
    }
    println!("serial loop: {serial_qps:10.1} qps");

    // Batched fan-out at each worker count; results must match the
    // serial reference byte for byte.
    let mut identical = true;
    let mut per_threads: Vec<(usize, f64)> = Vec::new();
    for threads in THREAD_COUNTS {
        let mut best_qps: f64 = 0.0;
        for _ in 0..rounds {
            let t = Instant::now();
            let batch = engine.query_batch_threads(&queries, threads);
            let qps = queries.len() as f64 / t.elapsed().as_secs_f64();
            best_qps = best_qps.max(qps);
            for (i, entry) in batch.iter().enumerate() {
                let codes: Vec<String> = entry
                    .result
                    .as_ref()
                    .expect("table1 queries succeed")
                    .suggestions
                    .iter()
                    .map(|s| s.code.clone())
                    .collect();
                if codes != reference[i] {
                    identical = false;
                }
            }
        }
        println!(
            "{threads} thread(s): {best_qps:10.1} qps ({:.2}x serial)",
            best_qps / serial_qps
        );
        per_threads.push((threads, best_qps));
    }
    let qps_8 = per_threads.iter().find(|(t, _)| *t == 8).map_or(0.0, |&(_, q)| q);
    let speedup_8 = qps_8 / serial_qps;
    println!(
        "\n8-thread speedup: {speedup_8:.2}x serial; results identical: {identical}\n"
    );
    assert!(identical, "batched results diverged from the serial loop");

    let round1 = |x: f64| (x * 10.0).round() / 10.0;
    let doc = Json::obj(vec![
        ("bench", Json::Str("batch_throughput".to_owned())),
        ("cpus", Json::num_u(cpus as u64)),
        ("queries", Json::num_u(queries.len() as u64)),
        ("rounds", Json::num_u(rounds as u64)),
        ("serial_qps", Json::Num(round1(serial_qps))),
        (
            "threads",
            Json::Obj(
                per_threads
                    .iter()
                    .map(|&(t, qps)| (t.to_string(), Json::Num(round1(qps))))
                    .collect(),
            ),
        ),
        ("speedup_8", Json::Num((speedup_8 * 100.0).round() / 100.0)),
        ("identical", Json::Bool(identical)),
        ("quick", Json::Bool(quick)),
    ]);
    let out = std::env::var("BENCH_BATCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json").to_owned()
    });
    std::fs::write(&out, doc.to_text()).expect("baseline file writes");
    println!("wrote {out}");
}
