//! Mining-scale harness — the §4.2 extraction-blowup anecdote, measured.
//!
//! The paper: "In some client methods, branching causes extraction to
//! take many hours and generate several gigabytes of example jungloids.
//! Our implementation avoids this by stopping after a defined maximum
//! number of example jungloids is extracted for a given cast expression."
//!
//! Part 1 sweeps the branching factor of a pathological ladder client
//! (`branching ^ depth` backward paths) with and without the per-cast
//! cap. Part 2 measures bulk throughput over procedurally generated
//! realistic corpora of growing size.
//!
//! Run with `cargo bench -p bench --bench mining_scaling`.

use std::time::Instant;

use bench::{criterion_group, Criterion};
use jungloid_dataflow::{LoweredCorpus, Miner, MinerConfig};
use prospector_corpora::client_gen::{explosion_case, generate_clients, ClientGenSpec, ExplosionSpec};
use prospector_corpora::eclipse_api;

fn print_report() {
    println!("\n=== Extraction blowup (paper §4.2 anecdote) ===\n");
    println!(
        "{:>6} {:>6} {:>12} {:>16} {:>14} {:>16} {:>14}",
        "depth", "branch", "paths", "uncapped (ms)", "examples", "capped (ms)", "examples"
    );
    // A previous full run measured (7,6): 279,936 paths, 1,110,228 ms
    // uncapped vs 1,302 ms capped — the paper's "many hours" anecdote on a
    // single cast site. The routine sweep stops at (6,5) so the bench
    // stays runnable.
    for (depth, branching) in [(4usize, 2usize), (4, 4), (5, 4), (6, 5)] {
        let spec = ExplosionSpec { depth, branching };
        let (mut api, unit) = explosion_case(&spec);
        let corpus = LoweredCorpus::lower(&mut api, &[unit]).expect("lowers");
        let paths = branching.pow(u32::try_from(depth).expect("small")) as u64;

        let run = |config: MinerConfig| {
            let mut miner = Miner::new(&api, &corpus);
            miner.config = config;
            let t = Instant::now();
            let report = miner.mine();
            (t.elapsed().as_secs_f64() * 1000.0, report.examples.len())
        };
        let uncapped = run(MinerConfig {
            max_examples_per_cast: usize::MAX,
            max_steps: 64,
            max_expansions: 50_000_000,
            parallel: false,
        });
        let capped = run(MinerConfig { parallel: false, ..MinerConfig::default() });
        println!(
            "{depth:>6} {branching:>6} {paths:>12} {:>16.2} {:>14} {:>16.2} {:>14}",
            uncapped.0, uncapped.1, capped.0, capped.1
        );
    }
    println!("\n(the cap keeps extraction flat while the uncapped walk grows exponentially)\n");

    println!("=== Bulk corpus throughput ===\n");
    println!("{:>8} {:>10} {:>12} {:>12}", "files", "casts", "mine (ms)", "examples");
    let api = eclipse_api().expect("stubs load");
    for files in [20usize, 80, 200] {
        let units = generate_clients(&api, &ClientGenSpec { files, ..ClientGenSpec::default() });
        let mut mining_api = eclipse_api().expect("stubs load");
        let corpus = LoweredCorpus::lower(&mut mining_api, &units).expect("lowers");
        let miner = Miner::new(&mining_api, &corpus);
        let t = Instant::now();
        let report = miner.mine();
        println!(
            "{files:>8} {:>10} {:>12.2} {:>12}",
            report.cast_sites,
            t.elapsed().as_secs_f64() * 1000.0,
            report.examples.len()
        );
    }
    println!();
}

fn bench_explosion(c: &mut Criterion) {
    let mut group = c.benchmark_group("mining_scaling");
    group.sample_size(10);
    let (mut api, unit) = explosion_case(&ExplosionSpec { depth: 6, branching: 5 });
    let corpus = LoweredCorpus::lower(&mut api, &[unit]).expect("lowers");
    group.bench_function("capped_explosion_d6_b5", |b| {
        b.iter(|| {
            let mut miner = Miner::new(&api, &corpus);
            miner.config.parallel = false;
            std::hint::black_box(miner.mine().examples.len())
        });
    });
    let base = eclipse_api().expect("stubs load");
    let units = generate_clients(&base, &ClientGenSpec { files: 80, ..ClientGenSpec::default() });
    let mut mining_api = eclipse_api().expect("stubs load");
    let bulk = LoweredCorpus::lower(&mut mining_api, &units).expect("lowers");
    group.bench_function("bulk_corpus_80_files", |b| {
        b.iter(|| {
            let miner = Miner::new(&mining_api, &bulk);
            std::hint::black_box(miner.mine().examples.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_explosion);

fn main() {
    print_report();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
