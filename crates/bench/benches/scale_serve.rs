//! Serve-layer scale harness: a synthetic power-law jungle at 10^4 /
//! 10^5 (and with `PROSPECTOR_BENCH_FULL=1`, 10^6) types, served by the
//! epoll readiness core and replayed over real sockets by keep-alive
//! client herds of increasing size.
//!
//! Two passes per graph size:
//!
//! 1. **Precision** — every planted ground-truth pair is queried once
//!    and the top suggestion must use the planted hop chain in order;
//!    the harness reports precision@1 (the acceptance bar is 1.0).
//! 2. **Load** — per connection count, a herd of keep-alive clients
//!    replays a mixed workload (planted queries, no-path bulk pairs,
//!    `/healthz`) and the harness reports qps, p50/p99 latency, and the
//!    `429` shed rate.
//!
//! Besides the human-readable report, the run writes a machine-readable
//! baseline to `BENCH_scale.json` at the repository root (override the
//! path with `BENCH_SCALE_OUT`). Run with
//! `cargo bench -p bench --bench scale_serve`; set
//! `PROSPECTOR_BENCH_QUICK=1` (or pass `--quick`) for a CI-sized 10^4
//! smoke run.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use jungloid_apidef::ApiLoader;
use prospector_cli::serve::{ServeOptions, Server};
use prospector_core::Prospector;
use prospector_corpora::synth::{grow_synth, PlantedPath, SynthSpec};
use prospector_obs::Json;
use prospector_registry::{Provenance, Registry};

fn quick_mode() -> bool {
    std::env::var_os("PROSPECTOR_BENCH_QUICK").is_some()
        || std::env::args().any(|a| a == "--quick")
}

fn full_mode() -> bool {
    std::env::var_os("PROSPECTOR_BENCH_FULL").is_some()
}

/// Reads one `Content-Length`-framed response off a keep-alive stream:
/// `(status_code, body)`.
fn read_one_response(stream: &mut TcpStream) -> (u16, String) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "connection closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end - 4]).into_owned();
    let code: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code in status line");
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .trim()
        .parse()
        .expect("numeric Content-Length");
    while buf.len() < head_end + length {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "connection closed mid-response body");
        buf.extend_from_slice(&chunk[..n]);
    }
    (code, String::from_utf8_lossy(&buf[head_end..head_end + length]).into_owned())
}

/// One keep-alive `GET`, returning `(status_code, body, latency_ns)`.
fn keepalive_get(stream: &mut TcpStream, path: &str) -> (u16, String, u64) {
    let raw = format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n");
    let started = Instant::now();
    stream.write_all(raw.as_bytes()).expect("send request");
    let (code, body) = read_one_response(stream);
    let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    (code, body, ns)
}

/// Precision@1 over the planted ground truth: the top suggestion must
/// contain every hop of the planted chain, in order.
fn precision_pass(addr: SocketAddr, planted: &[PlantedPath]) -> f64 {
    let mut stream = TcpStream::connect(addr).expect("connect precision client");
    let mut exact = 0usize;
    for p in planted {
        let (code, body, _) =
            keepalive_get(&mut stream, &format!("/query?tin={}&tout={}", p.tin, p.tout));
        assert_eq!(code, 200, "planted query must answer: {body}");
        let json = Json::parse(&body).expect("valid query JSON");
        let suggestions = json.get("suggestions").unwrap().as_arr().unwrap();
        let top = suggestions.first().and_then(Json::as_str).unwrap_or_default();
        let in_order = p
            .hops
            .iter()
            .try_fold(0usize, |from, hop| {
                top[from..].find(hop).map(|at| from + at + hop.len())
            })
            .is_some();
        exact += usize::from(in_order);
    }
    exact as f64 / planted.len().max(1) as f64
}

struct LoadCell {
    conns: usize,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    shed_rate: f64,
}

/// Replays the mixed workload from `conns` keep-alive clients and
/// aggregates latency + shed statistics.
fn load_pass(
    addr: SocketAddr,
    planted: &[PlantedPath],
    bulk_types: usize,
    conns: usize,
    requests_per_conn: usize,
) -> LoadCell {
    let shed = AtomicU64::new(0);
    let latencies: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let shed = &shed;
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect load client");
                    let mut lat = Vec::with_capacity(requests_per_conn);
                    for i in 0..requests_per_conn {
                        // Mixed workload: planted chains (real search
                        // work), bulk pairs (mostly no-path answers over
                        // the big graph), and the liveness endpoint.
                        let path = match i % 4 {
                            0 | 1 => {
                                let p = &planted[(c + i) % planted.len()];
                                format!("/query?tin={}&tout={}", p.tin, p.tout)
                            }
                            2 => {
                                let a = (c * 131 + i * 7919) % bulk_types;
                                let b = (c * 17 + i * 104_729) % bulk_types;
                                format!("/query?tin=Syn{a}&tout=Syn{b}")
                            }
                            _ => "/healthz".to_owned(),
                        };
                        let (code, body, ns) = keepalive_get(&mut stream, &path);
                        match code {
                            200 => {}
                            429 => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            other => panic!("unexpected status {other}: {body}"),
                        }
                        lat.push(ns);
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("load client")).collect()
    });
    let summed_ns: u64 = latencies.iter().flatten().sum();
    let mut all: Vec<u64> = latencies.into_iter().flatten().collect();
    all.sort_unstable();
    let total = all.len();
    // Clients are serial over keep-alive sockets, so the herd's
    // aggregate rate is total requests over the mean per-connection
    // busy time.
    let per_conn_s = summed_ns as f64 / 1e9 / conns as f64;
    let qps = total as f64 / per_conn_s.max(1e-9);
    let pct = |q: f64| all[((total - 1) as f64 * q) as usize] as f64 / 1_000.0;
    LoadCell {
        conns,
        qps,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        shed_rate: shed.load(Ordering::Relaxed) as f64 / total as f64,
    }
}

fn main() {
    let quick = quick_mode();
    let sizes: Vec<usize> = if quick {
        vec![10_000]
    } else if full_mode() {
        vec![10_000, 100_000, 1_000_000]
    } else {
        vec![10_000, 100_000]
    };
    let herds: &[usize] = if quick { &[2, 8] } else { &[4, 16, 64] };
    let requests_per_conn = if quick { 40 } else { 150 };
    let workers = std::thread::available_parallelism()
        .map_or(2, std::num::NonZeroUsize::get)
        .min(8);

    println!("\n=== serve-layer scale: synthetic jungle over the epoll core ===\n");
    let mut size_cells = Vec::new();
    for &types in &sizes {
        let spec = SynthSpec { types, ..SynthSpec::default() };
        let grow_started = Instant::now();
        let mut api = ApiLoader::with_prelude().finish().expect("prelude loads");
        let report = grow_synth(&mut api, &spec);
        let engine = Prospector::new(api);
        let build_s = grow_started.elapsed().as_secs_f64();
        println!(
            "types 10^{:.0}: {} classes / {} methods, graph built in {build_s:.2}s",
            (types as f64).log10(),
            report.classes,
            report.methods,
        );

        let registry = Registry::with_default(engine, Provenance::built());
        let mut server = Server::bind("127.0.0.1:0").expect("bind port 0");
        server.set_workers(workers);
        let addr = server.local_addr().expect("bound address");
        let shutdown = AtomicBool::new(false);
        let opts = ServeOptions::default();

        let (precision, loads) = std::thread::scope(|scope| {
            let serving = scope.spawn(|| server.run(&registry, &opts, &shutdown));
            let precision = precision_pass(addr, &report.planted);
            println!("  precision@1 on {} planted paths: {precision:.3}", report.planted.len());
            let loads: Vec<LoadCell> = herds
                .iter()
                .map(|&conns| {
                    let cell = load_pass(addr, &report.planted, types, conns, requests_per_conn);
                    println!(
                        "  {conns:>3} conns: {:>9.0} qps  p50 {:>8.0}us  p99 {:>8.0}us  shed {:.3}",
                        cell.qps, cell.p50_us, cell.p99_us, cell.shed_rate
                    );
                    cell
                })
                .collect();
            shutdown.store(true, Ordering::SeqCst);
            serving.join().expect("serve thread").expect("serve loop exits cleanly");
            (precision, loads)
        });
        assert!(
            (precision - 1.0).abs() < f64::EPSILON,
            "planted ground truth must be recovered exactly (got {precision})"
        );

        size_cells.push(Json::obj(vec![
            ("types", Json::num_u(types as u64)),
            ("classes", Json::num_u(report.classes as u64)),
            ("methods", Json::num_u(report.methods as u64)),
            ("build_s", Json::Num(build_s)),
            ("planted_paths", Json::num_u(report.planted.len() as u64)),
            ("precision_at_1", Json::Num(precision)),
            (
                "load",
                Json::Arr(
                    loads
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("conns", Json::num_u(c.conns as u64)),
                                ("requests_per_conn", Json::num_u(requests_per_conn as u64)),
                                ("qps", Json::Num(c.qps)),
                                ("p50_us", Json::Num(c.p50_us)),
                                ("p99_us", Json::Num(c.p99_us)),
                                ("shed_rate", Json::Num(c.shed_rate)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }

    let doc = Json::obj(vec![
        ("bench", Json::Str("scale_serve".to_owned())),
        ("quick", Json::Bool(quick)),
        ("serve_core", Json::Str(
            if prospector_cli::poller::supported() { "epoll" } else { "pool" }.to_owned(),
        )),
        ("workers", Json::num_u(workers as u64)),
        ("sizes", Json::Arr(size_cells)),
    ]);
    let out = std::env::var("BENCH_SCALE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json").to_owned()
    });
    std::fs::write(&out, doc.to_text()).expect("write scale baseline");
    println!("\nwrote {out}");
}
