//! Experiment E3 — the §5 performance numbers, at paper scale.
//!
//! The paper reports, on a 2.26 GHz Pentium 4 with 1 GB RAM, over
//! J2SE (≈21,000 methods) + Eclipse:
//!
//! * graph representation: 8 MB on disk, 24 MB in memory;
//! * load time: 1.5 s;
//! * all queries answered in under 1.1 s, 85% under 0.5 s.
//!
//! We grow the hand-modeled APIs with the procedural jungle to the same
//! method count, persist the graph, and reproduce each measurement. The
//! claims to preserve are the *bounds*: everything answers far inside
//! the paper's envelope.
//!
//! Run with `cargo bench -p bench --bench perf_section5`.

use std::time::Instant;

use bench::{criterion_group, Criterion};
use prospector_core::persist;
use prospector_corpora::{build, jungle::JungleSpec, problems, BuildOptions};

fn paper_scale_options() -> BuildOptions {
    BuildOptions { jungle: Some(JungleSpec::default()), ..BuildOptions::default() }
}

fn print_report() {
    println!("\n=== §5 performance (paper-scale graph) ===\n");
    let t0 = Instant::now();
    let built = build(&paper_scale_options()).expect("assembles");
    let engine = built.prospector;
    println!("graph build: {:.2} s", t0.elapsed().as_secs_f64());
    println!(
        "scale: {} types, {} methods (paper: ~21,000 J2SE methods), {} edges, {} nodes",
        engine.api().types().len(),
        engine.api().method_count(),
        engine.graph().edge_count(),
        engine.graph().node_count(),
    );

    // On-disk size (paper: 8 MB) and load time (paper: 1.5 s).
    let json = persist::to_json(engine.api(), engine.graph());
    println!(
        "serialized size: {:.1} MB (paper: 8 MB)",
        json.len() as f64 / (1024.0 * 1024.0)
    );
    let t1 = Instant::now();
    let loaded = persist::from_json(&json).expect("deserializes");
    println!("load time: {:.2} s (paper: 1.5 s)", t1.elapsed().as_secs_f64());
    println!(
        "in-memory adjacency estimate: {:.1} MB (paper: 24 MB total process)",
        loaded.graph.approx_bytes() as f64 / (1024.0 * 1024.0)
    );

    // Query latency distribution over the Table 1 mix (paper: all < 1.1 s,
    // 85% < 0.5 s).
    let api = engine.api();
    let mut latencies = Vec::new();
    for problem in problems::table1() {
        let tin = api.types().resolve(problem.tin).unwrap();
        let tout = api.types().resolve(problem.tout).unwrap();
        // Cold: includes the reverse-BFS distance field for this target.
        let t = Instant::now();
        let _ = engine.query(tin, tout).unwrap();
        latencies.push((problem.id, t.elapsed().as_secs_f64()));
    }
    latencies.sort_by(|a, b| a.1.total_cmp(&b.1));
    let under_half = latencies.iter().filter(|(_, t)| *t < 0.5).count();
    let under_paper = latencies.iter().filter(|(_, t)| *t < 1.1).count();
    println!("\nquery latencies over the paper-scale graph (cold, per problem):");
    for (id, t) in &latencies {
        println!("  P{id:02}: {:8.2} ms", t * 1000.0);
    }
    println!(
        "\n< 0.5 s: {under_half}/20 (paper: 85%);  < 1.1 s: {under_paper}/20 (paper: 100%)\n"
    );
    assert_eq!(under_paper, 20, "a query exceeded the paper's 1.1 s bound");
}

fn bench_load_and_query(c: &mut Criterion) {
    let built = build(&paper_scale_options()).expect("assembles");
    let mut engine = built.prospector;
    // This bench reproduces the paper's *pipeline* latency; with the
    // result cache on, every iteration after the first would measure a
    // cache hit instead.
    engine.cache_results = false;
    let json = persist::to_json(engine.api(), engine.graph());

    let mut group = c.benchmark_group("perf_section5");
    group.sample_size(10);
    group.bench_function("load_graph_from_json", |b| {
        b.iter(|| std::hint::black_box(persist::from_json(&json).unwrap().graph.edge_count()));
    });
    let api = engine.api();
    let ifile = api.types().resolve("IFile").unwrap();
    let ast = api.types().resolve("ASTNode").unwrap();
    group.bench_function("query_ifile_astnode_paper_scale", |b| {
        b.iter(|| std::hint::black_box(engine.query(ifile, ast).unwrap().suggestions.len()));
    });
    group.finish();
}

criterion_group!(benches, bench_load_and_query);

fn main() {
    print_report();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
