//! Scaling ablation — how query latency and candidate volume grow with
//! (a) API size (jungle classes) and (b) the enumeration window
//! (`extra_steps`, the paper's `m + 1` policy). The paper fixed
//! `m + 1` because it "balance[s] speed and quantity of paths found";
//! this bench quantifies that trade-off.
//!
//! Run with `cargo bench -p bench --bench search_scaling`.

use std::time::Instant;

use bench::{criterion_group, Criterion};
use prospector_corpora::{build, jungle::JungleSpec, BuildOptions};

fn engine_with_jungle(classes: usize) -> prospector_core::Prospector {
    // The result cache is disabled engine-wide below: this bench charts
    // how the *pipeline* scales with graph size, and a repeated query
    // answered from the cache would flat-line every series.
    let jungle = (classes > 0).then(|| JungleSpec { classes, ..JungleSpec::default() });
    let mut engine = build(&BuildOptions { jungle, ..BuildOptions::default() }).unwrap().prospector;
    engine.cache_results = false;
    engine
}

fn print_report() {
    println!("\n=== Search scaling ===\n");
    println!("API size sweep (query: IWorkbench -> IEditorPart, cold):");
    println!(
        "{:>8} {:>8} {:>8} {:>12} {:>12}",
        "classes", "nodes", "edges", "latency(ms)", "candidates"
    );
    for classes in [0usize, 500, 1500, 3000] {
        let engine = engine_with_jungle(classes);
        let api = engine.api();
        let tin = api.types().resolve("IWorkbench").unwrap();
        let tout = api.types().resolve("IEditorPart").unwrap();
        let t = Instant::now();
        let result = engine.query(tin, tout).unwrap();
        println!(
            "{:>8} {:>8} {:>8} {:>12.2} {:>12}",
            classes,
            engine.graph().node_count(),
            engine.graph().edge_count(),
            t.elapsed().as_secs_f64() * 1000.0,
            result.suggestions.len()
        );
    }

    println!("\nenumeration-window sweep (query: String -> BufferedReader, hand-modeled APIs):");
    println!("{:>12} {:>12} {:>12} {:>10}", "extra_steps", "latency(ms)", "candidates", "truncated");
    for extra in [0u32, 1, 2, 3] {
        let mut engine = engine_with_jungle(0);
        engine.search.extra_steps = extra;
        let api = engine.api();
        let tin = api.types().resolve("java.lang.String").unwrap();
        let tout = api.types().resolve("BufferedReader").unwrap();
        let t = Instant::now();
        let result = engine.query(tin, tout).unwrap();
        println!(
            "{:>12} {:>12.2} {:>12} {:>10}",
            extra,
            t.elapsed().as_secs_f64() * 1000.0,
            result.suggestions.len(),
            result.truncation
        );
    }
    println!("\n(the paper's choice, extra_steps = 1, is the knee of the curve)\n");
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_scaling");
    group.sample_size(10);
    for classes in [0usize, 1500, 3000] {
        let engine = engine_with_jungle(classes);
        let api = engine.api();
        let tin = api.types().resolve("IWorkbench").unwrap();
        let tout = api.types().resolve("IEditorPart").unwrap();
        // Warm the distance-field cache so the bench isolates enumeration.
        let _ = engine.query(tin, tout).unwrap();
        group.bench_function(format!("warm_query_{classes}_jungle_classes"), |b| {
            b.iter(|| std::hint::black_box(engine.query(tin, tout).unwrap().suggestions.len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);

fn main() {
    print_report();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
