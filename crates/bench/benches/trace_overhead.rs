//! Flight-recorder overhead — per-query latency for the Table 1 mix
//! with the trace ring disabled (the default: one relaxed atomic load
//! per query span, plain branches at every event site) versus enabled
//! (events buffered per query and flushed under one shard lock at
//! finish).
//!
//! The contract this guards: tracing OFF must be free enough that it is
//! never worth compiling out, and tracing ON must stay cheap enough to
//! leave on in a serving process.
//!
//! The `window_record` case extends the same contract to the rolling
//! SLO windows ([`prospector_obs::window`]): recording one observation
//! into a [`WindowRing`] must be O(ns) and **allocation-free** — the
//! serve layer calls it on every request, so a counting global
//! allocator asserts zero allocations across the hot loop. Results land
//! in `BENCH_obs_window.json` at the repository root (override with
//! `BENCH_OBS_WINDOW_OUT`).
//!
//! Run with `cargo bench -p bench --bench trace_overhead`; set
//! `PROSPECTOR_BENCH_QUICK=1` (or pass `--quick`) for a CI-sized smoke
//! run.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use jungloid_typesys::TyId;
use prospector_core::Prospector;
use prospector_corpora::{build, problems, BuildOptions};
use prospector_obs::window::WindowRing;
use prospector_obs::Json;

/// Counts every heap allocation so the window-record loop can prove it
/// makes none. Deallocation is uncounted — the contract is "no new
/// memory on the record path".
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers to `System` for every operation; only adds a relaxed
// counter bump on the allocation paths.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn quick_mode() -> bool {
    std::env::var_os("PROSPECTOR_BENCH_QUICK").is_some()
        || std::env::args().any(|a| a == "--quick")
}

fn query_mix(engine: &Prospector) -> Vec<(TyId, TyId)> {
    let api = engine.api();
    problems::table1()
        .iter()
        .map(|p| {
            (
                api.types().resolve(p.tin).expect("table1 tin resolves"),
                api.types().resolve(p.tout).expect("table1 tout resolves"),
            )
        })
        .collect()
}

/// Mean ns/query over `rounds` passes of the mix (first pass warms the
/// distance cache for both arms, so the two measure the same work).
fn measure(engine: &Prospector, queries: &[(TyId, TyId)], rounds: usize) -> f64 {
    for &(tin, tout) in queries {
        let _ = engine.query(tin, tout);
    }
    let started = Instant::now();
    for _ in 0..rounds {
        for &(tin, tout) in queries {
            let _ = engine.query(tin, tout);
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let per_query = started.elapsed().as_nanos() as f64 / (rounds * queries.len()) as f64;
    per_query
}

/// `(ns_per_record, allocations, ns_per_view)` over `iters` records
/// into one ring. The slot for the current second is claimed before the
/// timed loop, so the loop measures the steady-state path: one `Instant`
/// read, one stamp load, one bucket fetch-add.
fn measure_window(iters: u64) -> (f64, u64, f64) {
    let ring = WindowRing::new();
    ring.record(1); // claim the current slot outside the timed loop
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let started = Instant::now();
    for i in 0..iters {
        ring.record(black_box(i & 0xFFFF));
    }
    #[allow(clippy::cast_precision_loss)]
    let per_record = started.elapsed().as_nanos() as f64 / iters as f64;
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    let views = (iters / 100).max(100);
    let started = Instant::now();
    for _ in 0..views {
        black_box(ring.view(60));
    }
    #[allow(clippy::cast_precision_loss)]
    let per_view = started.elapsed().as_nanos() as f64 / views as f64;
    (per_record, allocs, per_view)
}

fn main() {
    let quick = quick_mode();
    let rounds = if quick { 5 } else { 50 };

    println!("\n=== flight-recorder overhead (Table 1 mix) ===\n");
    let mut engine = build(&BuildOptions::default()).expect("assembles").prospector;
    // Measure the pipeline, not the result cache: repeated identical
    // queries would otherwise be O(1) lookups in both arms.
    engine.cache_results = false;
    let queries = query_mix(&engine);

    prospector_obs::trace::set_enabled(false);
    let off = measure(&engine, &queries, rounds);
    assert_eq!(
        prospector_obs::trace::event_count(),
        0,
        "disabled tracing must publish no events"
    );

    prospector_obs::trace::set_enabled(true);
    let on = measure(&engine, &queries, rounds);
    let recorded = prospector_obs::trace::event_count();
    prospector_obs::trace::set_enabled(false);
    assert!(recorded > 0, "enabled tracing must publish events");

    let delta = on - off;
    println!("tracing off: {off:>12.0} ns/query");
    println!("tracing on:  {on:>12.0} ns/query  ({recorded} events recorded)");
    println!(
        "overhead:    {delta:>12.0} ns/query  ({:+.1}%)",
        delta / off * 100.0
    );

    println!("\n=== rolling-window recording ===\n");
    let iters: u64 = if quick { 200_000 } else { 5_000_000 };
    let (per_record, allocs, per_view) = measure_window(iters);
    println!("window record: {per_record:>10.1} ns/record  ({iters} records, {allocs} allocations)");
    println!("window view:   {per_view:>10.1} ns/view (1m over 330 slots)");
    assert_eq!(allocs, 0, "the window record path must not allocate");
    assert!(
        per_record < 10_000.0,
        "window recording must stay O(ns): {per_record} ns/record"
    );

    let doc = Json::obj(vec![
        (
            "window_record",
            Json::obj(vec![
                ("iters", Json::num_u(iters)),
                ("ns_per_record", Json::Num((per_record * 10.0).round() / 10.0)),
                ("allocations", Json::num_u(allocs)),
            ]),
        ),
        (
            "window_view_1m",
            Json::obj(vec![("ns_per_view", Json::Num((per_view * 10.0).round() / 10.0))]),
        ),
        (
            "trace_overhead",
            Json::obj(vec![
                ("off_ns_per_query", Json::Num(off.round())),
                ("on_ns_per_query", Json::Num(on.round())),
                ("delta_ns_per_query", Json::Num(delta.round())),
            ]),
        ),
        ("quick", Json::Bool(quick)),
    ]);
    let out = std::env::var("BENCH_OBS_WINDOW_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs_window.json").to_owned()
    });
    std::fs::write(&out, doc.to_text()).expect("baseline file writes");
    println!("wrote {out}");

    if quick {
        println!("\n(quick mode: {rounds} rounds; timings are smoke-level only)");
    }
}
