//! Flight-recorder overhead — per-query latency for the Table 1 mix
//! with the trace ring disabled (the default: one relaxed atomic load
//! per query span, plain branches at every event site) versus enabled
//! (events buffered per query and flushed under one shard lock at
//! finish).
//!
//! The contract this guards: tracing OFF must be free enough that it is
//! never worth compiling out, and tracing ON must stay cheap enough to
//! leave on in a serving process.
//!
//! Run with `cargo bench -p bench --bench trace_overhead`; set
//! `PROSPECTOR_BENCH_QUICK=1` (or pass `--quick`) for a CI-sized smoke
//! run.

use std::time::Instant;

use jungloid_typesys::TyId;
use prospector_core::Prospector;
use prospector_corpora::{build, problems, BuildOptions};

fn quick_mode() -> bool {
    std::env::var_os("PROSPECTOR_BENCH_QUICK").is_some()
        || std::env::args().any(|a| a == "--quick")
}

fn query_mix(engine: &Prospector) -> Vec<(TyId, TyId)> {
    let api = engine.api();
    problems::table1()
        .iter()
        .map(|p| {
            (
                api.types().resolve(p.tin).expect("table1 tin resolves"),
                api.types().resolve(p.tout).expect("table1 tout resolves"),
            )
        })
        .collect()
}

/// Mean ns/query over `rounds` passes of the mix (first pass warms the
/// distance cache for both arms, so the two measure the same work).
fn measure(engine: &Prospector, queries: &[(TyId, TyId)], rounds: usize) -> f64 {
    for &(tin, tout) in queries {
        let _ = engine.query(tin, tout);
    }
    let started = Instant::now();
    for _ in 0..rounds {
        for &(tin, tout) in queries {
            let _ = engine.query(tin, tout);
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let per_query = started.elapsed().as_nanos() as f64 / (rounds * queries.len()) as f64;
    per_query
}

fn main() {
    let quick = quick_mode();
    let rounds = if quick { 5 } else { 50 };

    println!("\n=== flight-recorder overhead (Table 1 mix) ===\n");
    let mut engine = build(&BuildOptions::default()).expect("assembles").prospector;
    // Measure the pipeline, not the result cache: repeated identical
    // queries would otherwise be O(1) lookups in both arms.
    engine.cache_results = false;
    let queries = query_mix(&engine);

    prospector_obs::trace::set_enabled(false);
    let off = measure(&engine, &queries, rounds);
    assert_eq!(
        prospector_obs::trace::event_count(),
        0,
        "disabled tracing must publish no events"
    );

    prospector_obs::trace::set_enabled(true);
    let on = measure(&engine, &queries, rounds);
    let recorded = prospector_obs::trace::event_count();
    prospector_obs::trace::set_enabled(false);
    assert!(recorded > 0, "enabled tracing must publish events");

    let delta = on - off;
    println!("tracing off: {off:>12.0} ns/query");
    println!("tracing on:  {on:>12.0} ns/query  ({recorded} events recorded)");
    println!(
        "overhead:    {delta:>12.0} ns/query  ({:+.1}%)",
        delta / off * 100.0
    );
    if quick {
        println!("\n(quick mode: {rounds} rounds; timings are smoke-level only)");
    }
}
