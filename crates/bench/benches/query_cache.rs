//! Result-cache effectiveness — per-query latency for the Table 1 mix
//! answered **cold** (a freshly built engine: distance fields, DFS
//! enumeration, synthesis, rank keys, and dedup all paid on first
//! contact) versus **warm** (every query answered from the result
//! cache's sharded LRU as an `Arc<QueryResult>` hit).
//!
//! The contract this guards: a warm result-cache hit must be at least an
//! order of magnitude faster than a cold query, and the hit must return
//! byte-identical suggestions (codes, order, truncation) to a
//! cache-disabled engine — the cache is a pure memoization, never an
//! approximation.
//!
//! Besides the human-readable report, the run writes a machine-readable
//! baseline to `BENCH_result_cache.json` at the repository root
//! (override the path with `BENCH_RESULT_CACHE_OUT`), recording cold,
//! repeat-pipeline, and warm ns/query, the cold/warm speedup, hit/miss
//! counters, and the identity check.
//!
//! Run with `cargo bench -p bench --bench query_cache`; set
//! `PROSPECTOR_BENCH_QUICK=1` (or pass `--quick`) for a CI-sized smoke
//! run.

use std::time::Instant;

use jungloid_typesys::TyId;
use prospector_core::Prospector;
use prospector_corpora::{build, problems, BuildOptions};
use prospector_obs::Json;

fn quick_mode() -> bool {
    std::env::var_os("PROSPECTOR_BENCH_QUICK").is_some()
        || std::env::args().any(|a| a == "--quick")
}

/// The paper-scale fixture: the evaluation corpus plus the procedural
/// distractor jungle, so cold queries pay a realistic distance-field
/// and enumeration cost (the small stub corpus alone answers queries in
/// tens of microseconds, which understates what a cache hit saves).
fn jungle_options() -> BuildOptions {
    BuildOptions {
        jungle: Some(prospector_corpora::jungle::JungleSpec::default()),
        ..BuildOptions::default()
    }
}

fn query_mix(engine: &Prospector) -> Vec<(TyId, TyId)> {
    let api = engine.api();
    problems::table1()
        .iter()
        .map(|p| {
            (
                api.types().resolve(p.tin).expect("table1 tin resolves"),
                api.types().resolve(p.tout).expect("table1 tout resolves"),
            )
        })
        .collect()
}

/// Ranked codes + truncation per query — the comparable fingerprint.
fn fingerprint(engine: &Prospector, queries: &[(TyId, TyId)]) -> Vec<(Vec<String>, String)> {
    queries
        .iter()
        .map(|&(tin, tout)| {
            let r = engine.query(tin, tout).expect("table1 queries succeed");
            (
                r.suggestions.iter().map(|s| s.code.clone()).collect(),
                r.truncation.label().to_owned(),
            )
        })
        .collect()
}

/// Mean ns/query over `rounds` passes of the mix.
fn measure(engine: &Prospector, queries: &[(TyId, TyId)], rounds: usize) -> f64 {
    let started = Instant::now();
    for _ in 0..rounds {
        for &(tin, tout) in queries {
            let _ = engine.query(tin, tout);
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let per_query = started.elapsed().as_nanos() as f64 / (rounds * queries.len()) as f64;
    per_query
}

fn main() {
    let quick = quick_mode();
    let warm_rounds = if quick { 10 } else { 100 };
    let cold_rounds = if quick { 1 } else { 3 };

    println!("\n=== result cache: cold queries vs warm hits (Table 1 mix) ===\n");

    // Reference fingerprint from a cache-disabled engine: what the raw
    // pipeline answers, byte for byte.
    let mut raw = build(&jungle_options()).expect("assembles").prospector;
    raw.cache_results = false;
    let raw_queries = query_mix(&raw);
    let reference = fingerprint(&raw, &raw_queries);
    // The repeat-pipeline cost (distance cache warm, result cache off) —
    // what every repeated query paid before the result cache existed.
    let repeat_pipeline = measure(&raw, &raw_queries, warm_rounds);

    // Cold arm: a freshly built engine per round; the first pass over
    // the mix pays distance-field construction and the full pipeline —
    // the latency of a query nobody has asked before.
    let mut cold = f64::INFINITY;
    let mut engine = raw; // placeholder; replaced by the last cold engine
    let mut queries = raw_queries;
    for _ in 0..cold_rounds {
        let fresh = build(&jungle_options()).expect("assembles").prospector;
        let mix = query_mix(&fresh);
        let t = Instant::now();
        for &(tin, tout) in &mix {
            let _ = fresh.query(tin, tout).expect("table1 queries succeed");
        }
        #[allow(clippy::cast_precision_loss)]
        let per_query = t.elapsed().as_nanos() as f64 / mix.len() as f64;
        cold = cold.min(per_query);
        engine = fresh;
        queries = mix;
    }

    // Warm arm: the cold pass primed the result cache, so every query
    // below is a hit.
    let warm = measure(&engine, &queries, warm_rounds);

    // Byte-identity: warm hits return exactly what the pipeline would.
    let cached = fingerprint(&engine, &queries);
    let identical = cached == reference;
    assert!(identical, "cached results diverged from the raw pipeline");

    let snap = prospector_obs::snapshot();
    let hits = snap.counter("engine.result_cache.hits").unwrap_or(0);
    let misses = snap.counter("engine.result_cache.misses").unwrap_or(0);

    let speedup = cold / warm;
    println!("cold (fresh engine):   {cold:>12.0} ns/query");
    println!("repeat pipeline:       {repeat_pipeline:>12.0} ns/query  (dist cache warm, result cache off)");
    println!("warm (cache hit):      {warm:>12.0} ns/query");
    println!("cold/warm speedup:     {speedup:>12.1}x  (hits {hits}, misses {misses})");
    println!("identical:             {identical}");
    if quick {
        println!("\n(quick mode: {warm_rounds} warm rounds; timings are smoke-level only)");
    }
    assert!(
        speedup >= 10.0,
        "a warm result-cache hit must be >= 10x faster than a cold query ({speedup:.1}x)"
    );

    let doc = Json::obj(vec![
        ("bench", Json::Str("query_cache".to_owned())),
        ("queries", Json::num_u(queries.len() as u64)),
        ("warm_rounds", Json::num_u(warm_rounds as u64)),
        ("cold_rounds", Json::num_u(cold_rounds as u64)),
        ("cold_ns_per_query", Json::num_u(cold.round() as u64)),
        ("repeat_pipeline_ns_per_query", Json::num_u(repeat_pipeline.round() as u64)),
        ("warm_ns_per_query", Json::num_u(warm.round() as u64)),
        ("speedup", Json::Num((speedup * 10.0).round() / 10.0)),
        ("hits", Json::num_u(hits)),
        ("misses", Json::num_u(misses)),
        ("identical", Json::Bool(identical)),
        ("quick", Json::Bool(quick)),
    ]);
    let out = std::env::var("BENCH_RESULT_CACHE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_result_cache.json").to_owned()
    });
    std::fs::write(&out, doc.to_text()).expect("baseline file writes");
    println!("wrote {out}");
}
