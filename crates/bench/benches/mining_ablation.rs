//! Experiment E7 / ablation — what jungloid mining (§4) buys, and what
//! the alternatives cost:
//!
//! * `signatures`   — the §3 baseline: downcast queries are unanswerable;
//! * `naive-casts`  — Figure 3's strawman: every `(U) x : T → U` edge is
//!   added; the queries "answer", but the top suggestions are inviable
//!   cast-anything jungloids;
//! * `mined-raw`    — §4.2 extraction without generalization;
//! * `mined-gen`    — the full system.
//!
//! Plus the per-cast example-cap sweep (§4.2 caps extraction per cast
//! site to avoid the gigabytes-of-examples blowup the paper reports).
//!
//! Run with `cargo bench -p bench --bench mining_ablation`.

use bench::{criterion_group, Criterion};
use jungloid_dataflow::{LoweredCorpus, Miner};
use prospector_core::viability::viability_rate;
use prospector_core::Prospector;
use prospector_corpora::behavior::eclipse_behavior;
use prospector_corpora::{build, corpus_units, eclipse_api, BuildOptions};

/// The downcast-dependent query set: `(tin, tout, desired substrings)`.
const DOWNCAST_QUERIES: [(&str, &str, &[&str]); 5] = [
    ("IDebugView", "JavaInspectExpression", &["(JavaInspectExpression)", "getFirstElement()"]),
    ("ScrollingGraphicalViewer", "FigureCanvas", &["(FigureCanvas)", ".getControl()"]),
    ("IWorkbenchPage", "IStructuredSelection", &["(IStructuredSelection)"]),
    ("IViewPart", "MenuManager", &["getMenuManager()"]),
    ("Project", "Target", &["getTargets().get("]),
];

fn evaluate(engine: &Prospector, label: &str) {
    let api = engine.api();
    let behavior = eclipse_behavior(api);
    let mut answered = 0;
    let mut desired_found = 0;
    let mut detail = Vec::new();
    let mut top3: Vec<prospector_core::Jungloid> = Vec::new();
    for (tin, tout, needles) in DOWNCAST_QUERIES {
        let tin = api.types().resolve(tin).unwrap();
        let tout = api.types().resolve(tout).unwrap();
        let result = engine.query(tin, tout).unwrap();
        let rank = result.rank_where(|s| needles.iter().all(|n| s.code.contains(n)));
        if !result.suggestions.is_empty() {
            answered += 1;
        }
        if rank.is_some_and(|r| r <= 10) {
            desired_found += 1;
        }
        top3.extend(result.suggestions.iter().take(3).map(|s| s.jungloid.clone()));
        detail.push(match rank {
            Some(r) => format!("{r}"),
            None if result.suggestions.is_empty() => "-".to_owned(),
            None => format!("junk×{}", result.suggestions.len()),
        });
    }
    // §4.1's viability, under the behavior model (corpora::behavior):
    // fraction of the top-3 suggestions across the query set that some
    // environment makes return normally.
    let refs: Vec<&prospector_core::Jungloid> = top3.iter().collect();
    let viable = if refs.is_empty() { f64::NAN } else { viability_rate(api, &behavior, &refs) };
    println!(
        "{label:<12} answered {answered}/5, desired found {desired_found}/5, top-3 viability {:>5.0}%, ranks [{}]",
        viable * 100.0,
        detail.join(" ")
    );
}

fn print_report() {
    println!("\n=== Mining ablation over the downcast query set ===\n");

    let signatures = build(&BuildOptions { mining: false, ..BuildOptions::default() })
        .unwrap()
        .prospector;
    evaluate(&signatures, "signatures");

    // Figure 3's naive strategy.
    let naive_graph = signatures.graph().with_naive_downcasts(signatures.api());
    let api = eclipse_api().unwrap();
    let naive = Prospector::from_parts(api, naive_graph);
    evaluate(&naive, "naive-casts");

    let raw = build(&BuildOptions { generalize: false, ..BuildOptions::default() })
        .unwrap()
        .prospector;
    evaluate(&raw, "mined-raw");

    let full = build(&BuildOptions::default()).unwrap().prospector;
    evaluate(&full, "mined-gen");

    println!("\nper-cast example cap sweep (§4.2):");
    let mut base_api = eclipse_api().unwrap();
    let units = corpus_units().unwrap();
    let lowered = LoweredCorpus::lower(&mut base_api, &units).unwrap();
    for cap in [1usize, 2, 8, 64] {
        let mut miner = Miner::new(&base_api, &lowered);
        miner.config.max_examples_per_cast = cap;
        let report = miner.mine();
        println!(
            "  cap {cap:>3}: {} examples from {} cast sites ({} capped)",
            report.examples.len(),
            report.cast_sites,
            report.capped_casts
        );
    }
    println!();
}

fn bench_mining(c: &mut Criterion) {
    let mut api = eclipse_api().unwrap();
    let units = corpus_units().unwrap();
    let lowered = LoweredCorpus::lower(&mut api, &units).unwrap();
    let mut group = c.benchmark_group("mining_ablation");
    group.sample_size(20);
    group.bench_function("mine_corpus_serial", |b| {
        b.iter(|| {
            let mut miner = Miner::new(&api, &lowered);
            miner.config.parallel = false;
            std::hint::black_box(miner.mine().examples.len())
        });
    });
    group.bench_function("mine_corpus_parallel", |b| {
        b.iter(|| {
            let miner = Miner::new(&api, &lowered);
            std::hint::black_box(miner.mine().examples.len())
        });
    });
    group.bench_function("generalize_examples", |b| {
        let miner = Miner::new(&api, &lowered);
        let report = miner.mine();
        b.iter(|| {
            std::hint::black_box(prospector_core::generalize::generalize(&report.examples).len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_mining);

fn main() {
    print_report();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
