//! Experiment E1 — regenerates **Table 1** (§7): the twenty
//! query-processing problems with measured wall-clock time and the rank
//! of the desired solution, side by side with the paper's numbers, then
//! benchmarks each query with Criterion.
//!
//! Run with `cargo bench -p bench --bench table1`.

use bench::{criterion_group, Criterion};
use prospector_corpora::report::{format_table1, run_table1};
use prospector_corpora::{build_default, problems};

fn print_report() {
    let prospector = build_default();
    let rows = run_table1(&prospector);
    println!("\n=== Table 1 (paper §7) ===\n");
    println!("{}", format_table1(&rows));
    let agree = rows.iter().filter(|r| r.agrees_on_found()).count();
    println!("found/not-found agreement with the paper: {agree}/20\n");
}

fn bench_queries(c: &mut Criterion) {
    let prospector = build_default();
    let api = prospector.api();
    let mut group = c.benchmark_group("table1");
    group.sample_size(20);
    for problem in problems::table1() {
        let tin = api.types().resolve(problem.tin).unwrap();
        let tout = api.types().resolve(problem.tout).unwrap();
        group.bench_function(
            format!("p{:02}_{}_{}", problem.id, problem.tin, problem.tout),
            |b| {
                b.iter(|| {
                    let result = prospector.query(tin, tout).unwrap();
                    std::hint::black_box(result.suggestions.len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_queries);

fn main() {
    print_report();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
