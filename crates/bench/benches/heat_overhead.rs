//! Workload-analytics overhead — the cost of graph heat accounting, the
//! query sketches, and the cooperative profiler, measured two ways:
//!
//! * **Allocation pins.** The hot paths that run inside queries or at
//!   ~100 Hz in the sampler thread — sketch `record` at capacity, the
//!   heat table merge ([`heat::merge_raw`] / [`heat::record_field`]),
//!   and profiler `push`/`pop`/[`profile::sample_all`] — must make zero
//!   heap allocations after warm-up. A counting global allocator asserts
//!   exactly that.
//! * **End-to-end throughput.** The Table 1 mix replayed with the result
//!   cache off (so every query runs the full pipeline), heat accounting
//!   disabled versus enabled. The acceptance bar is a < 5% qps
//!   regression; the measured delta lands in `BENCH_heat.json` at the
//!   repository root (override with `BENCH_HEAT_OUT`) so CI and future
//!   sessions can diff it, but timing is asserted only loosely here —
//!   shared runners are too noisy for a hard gate.
//!
//! Run with `cargo bench -p bench --bench heat_overhead`; set
//! `PROSPECTOR_BENCH_QUICK=1` (or pass `--quick`) for a CI-sized smoke
//! run.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use jungloid_typesys::TyId;
use prospector_core::heat;
use prospector_core::Prospector;
use prospector_corpora::{build, problems, BuildOptions};
use prospector_obs::sketch::{CountMinSketch, SpaceSaving};
use prospector_obs::{profile, Json};

/// Counts every heap allocation so the pinned loops can prove they make
/// none. Deallocation is uncounted — the contract is "no new memory on
/// the record path".
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers to `System` for every operation; only adds a relaxed
// counter bump on the allocation paths.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn quick_mode() -> bool {
    std::env::var_os("PROSPECTOR_BENCH_QUICK").is_some()
        || std::env::args().any(|a| a == "--quick")
}

fn allocs() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Sketch record paths at capacity: count-min `record` (pure arithmetic
/// over preallocated rows) and space-saving `record` against a full
/// tracker (linear scan + in-place evict). Returns
/// `(cm_ns, ss_ns, allocations)`.
fn measure_sketch(iters: u64) -> (f64, f64, u64) {
    let mut cm = CountMinSketch::new(1024, 4, 0x5eed);
    let mut ss = SpaceSaving::new(64);
    // Fill the tracker so the timed loop exercises the evict path too.
    for key in 0..64u64 {
        ss.record(key, 1);
    }
    let before = allocs();
    let started = Instant::now();
    for i in 0..iters {
        cm.record(black_box(i % 257), 1);
    }
    #[allow(clippy::cast_precision_loss)]
    let cm_ns = started.elapsed().as_nanos() as f64 / iters as f64;
    let started = Instant::now();
    for i in 0..iters {
        // Mix of resident keys (i % 64) and strangers forcing eviction.
        ss.record(black_box(i % 97), 1);
    }
    #[allow(clippy::cast_precision_loss)]
    let ss_ns = started.elapsed().as_nanos() as f64 / iters as f64;
    let spent = allocs() - before;
    black_box(cm.estimate(0));
    black_box(ss.len());
    (cm_ns, ss_ns, spent)
}

/// The per-query heat merge: `merge_raw` over a touched set sized like a
/// real DFS (a few hundred nodes/edges out of thousands), plus
/// `record_field` over a dense distance array. The table is seeded once
/// outside the timed loop so the loop measures steady-state merging into
/// already-sized vectors. Returns `(merge_ns, field_ns, allocations)`.
fn measure_heat_merge(iters: u64) -> (f64, f64, u64) {
    const NODES: usize = 4096;
    const EDGES: usize = 16384;
    let touched_nodes: Vec<u32> = (0..256u32).map(|i| i * 16).collect();
    let node_heat: Vec<u32> = {
        let mut v = vec![0u32; NODES];
        for &i in &touched_nodes {
            v[i as usize] = 3;
        }
        v
    };
    let touched_edges: Vec<u32> = (0..512u32).map(|i| i * 32).collect();
    let edge_heat: Vec<u32> = {
        let mut v = vec![0u32; EDGES];
        for &i in &touched_edges {
            v[i as usize] = 2;
        }
        v
    };
    let dist: Vec<u32> = (0..NODES as u32)
        .map(|i| if i % 3 == 0 { i } else { u32::MAX })
        .collect();
    // First merge sizes the global table; not part of the pin.
    heat::merge_raw(1, NODES, EDGES, &touched_nodes, &node_heat, &touched_edges, &edge_heat);
    heat::record_field(1, &dist, EDGES);
    let before = allocs();
    let started = Instant::now();
    for _ in 0..iters {
        heat::merge_raw(
            1,
            NODES,
            EDGES,
            black_box(&touched_nodes),
            black_box(&node_heat),
            black_box(&touched_edges),
            black_box(&edge_heat),
        );
    }
    #[allow(clippy::cast_precision_loss)]
    let merge_ns = started.elapsed().as_nanos() as f64 / iters as f64;
    let started = Instant::now();
    for _ in 0..iters {
        heat::record_field(1, black_box(&dist), EDGES);
    }
    #[allow(clippy::cast_precision_loss)]
    let field_ns = started.elapsed().as_nanos() as f64 / iters as f64;
    let spent = allocs() - before;
    heat::reset();
    (merge_ns, field_ns, spent)
}

/// Profiler paths: span `push`/`pop` pairs on the worker side and
/// `sample_all` on the sampler side. The first push registers this
/// thread's slot and the first samples claim fold-table entries — both
/// outside the timed region. Returns
/// `(push_pop_ns, sample_ns, allocations)`.
fn measure_profile(iters: u64) -> (f64, f64, u64) {
    profile::set_enabled(true);
    // Warm-up: register the thread slot and claim the fold-table slots
    // the timed loop will hit.
    if profile::push("bench.outer") {
        profile::sample_all();
        if profile::push("bench.inner") {
            profile::sample_all();
            profile::pop();
        }
        profile::pop();
    }
    profile::sample_all();
    let before = allocs();
    let started = Instant::now();
    for _ in 0..iters {
        let owed = profile::push(black_box("bench.outer"));
        let inner = profile::push(black_box("bench.inner"));
        if inner {
            profile::pop();
        }
        if owed {
            profile::pop();
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let push_pop_ns = started.elapsed().as_nanos() as f64 / iters as f64;
    let samples = iters / 10;
    let started = Instant::now();
    for _ in 0..samples {
        profile::sample_all();
    }
    #[allow(clippy::cast_precision_loss)]
    let sample_ns = started.elapsed().as_nanos() as f64 / samples as f64;
    let spent = allocs() - before;
    profile::set_enabled(false);
    black_box(profile::samples());
    (push_pop_ns, sample_ns, spent)
}

fn query_mix(engine: &Prospector) -> Vec<(TyId, TyId)> {
    let api = engine.api();
    problems::table1()
        .iter()
        .map(|p| {
            (
                api.types().resolve(p.tin).expect("table1 tin resolves"),
                api.types().resolve(p.tout).expect("table1 tout resolves"),
            )
        })
        .collect()
}

/// Mean ns/query over `rounds` passes of the mix (first pass warms the
/// distance cache for both arms, so the two measure the same work).
fn measure_queries(engine: &Prospector, queries: &[(TyId, TyId)], rounds: usize) -> f64 {
    for &(tin, tout) in queries {
        let _ = engine.query(tin, tout);
    }
    let started = Instant::now();
    for _ in 0..rounds {
        for &(tin, tout) in queries {
            let _ = engine.query(tin, tout);
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let per_query = started.elapsed().as_nanos() as f64 / (rounds * queries.len()) as f64;
    per_query
}

fn main() {
    let quick = quick_mode();
    let iters: u64 = if quick { 100_000 } else { 2_000_000 };
    let merge_iters: u64 = if quick { 5_000 } else { 100_000 };
    let rounds = if quick { 5 } else { 50 };

    println!("\n=== sketch record (at capacity) ===\n");
    let (cm_ns, ss_ns, sketch_allocs) = measure_sketch(iters);
    println!("count-min record:     {cm_ns:>8.1} ns");
    println!("space-saving record:  {ss_ns:>8.1} ns  ({sketch_allocs} allocations)");
    assert_eq!(sketch_allocs, 0, "sketch record paths must not allocate");

    println!("\n=== heat table merge (per query / per field build) ===\n");
    let (merge_ns, field_ns, merge_allocs) = measure_heat_merge(merge_iters);
    println!("merge_raw:     {merge_ns:>10.0} ns  (256 nodes + 512 edges touched)");
    println!("record_field:  {field_ns:>10.0} ns  (4096-node distance array, {merge_allocs} allocations)");
    assert_eq!(merge_allocs, 0, "steady-state heat merges must not allocate");

    println!("\n=== profiler (worker push/pop, sampler sweep) ===\n");
    let (push_pop_ns, sample_ns, prof_allocs) = measure_profile(iters);
    println!("push+pop x2:   {push_pop_ns:>10.1} ns  (two-frame stack)");
    println!("sample_all:    {sample_ns:>10.1} ns  ({prof_allocs} allocations)");
    assert_eq!(
        prof_allocs, 0,
        "profiler record and sample paths must not allocate after warm-up"
    );

    println!("\n=== heat accounting overhead (Table 1 mix) ===\n");
    let mut engine = build(&BuildOptions::default()).expect("assembles").prospector;
    // Measure the pipeline, not the result cache: repeated identical
    // queries would otherwise be O(1) lookups in both arms.
    engine.cache_results = false;
    let queries = query_mix(&engine);

    heat::set_enabled(false);
    heat::reset();
    let off = measure_queries(&engine, &queries, rounds);

    heat::set_enabled(true);
    let on = measure_queries(&engine, &queries, rounds);
    let snap = engine.heat_snapshot(5);
    heat::set_enabled(false);
    heat::reset();
    assert!(snap.queries > 0, "enabled heat must merge query tallies");

    let delta = on - off;
    let pct = delta / off * 100.0;
    println!("heat off: {off:>12.0} ns/query");
    println!("heat on:  {on:>12.0} ns/query  ({} queries merged)", snap.queries);
    println!("overhead: {delta:>12.0} ns/query  ({pct:+.1}%)");

    let doc = Json::obj(vec![
        (
            "sketch_record",
            Json::obj(vec![
                ("iters", Json::num_u(iters)),
                ("count_min_ns", Json::Num((cm_ns * 10.0).round() / 10.0)),
                ("space_saving_ns", Json::Num((ss_ns * 10.0).round() / 10.0)),
                ("allocations", Json::num_u(sketch_allocs)),
            ]),
        ),
        (
            "heat_merge",
            Json::obj(vec![
                ("iters", Json::num_u(merge_iters)),
                ("merge_raw_ns", Json::Num(merge_ns.round())),
                ("record_field_ns", Json::Num(field_ns.round())),
                ("allocations", Json::num_u(merge_allocs)),
            ]),
        ),
        (
            "profile",
            Json::obj(vec![
                ("push_pop_ns", Json::Num((push_pop_ns * 10.0).round() / 10.0)),
                ("sample_all_ns", Json::Num((sample_ns * 10.0).round() / 10.0)),
                ("allocations", Json::num_u(prof_allocs)),
            ]),
        ),
        (
            "heat_overhead",
            Json::obj(vec![
                ("off_ns_per_query", Json::Num(off.round())),
                ("on_ns_per_query", Json::Num(on.round())),
                ("delta_ns_per_query", Json::Num(delta.round())),
                ("delta_pct", Json::Num((pct * 10.0).round() / 10.0)),
            ]),
        ),
        ("quick", Json::Bool(quick)),
    ]);
    let out = std::env::var("BENCH_HEAT_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_heat.json").to_owned()
    });
    std::fs::write(&out, doc.to_text()).expect("baseline file writes");
    println!("wrote {out}");

    if quick {
        println!("\n(quick mode: timings are smoke-level only)");
    }
}
