//! The structured access log: one strict-JSON line per served request.
//!
//! The flight recorder ([`crate::trace`]) answers "what happened inside
//! query X"; the metric registry answers "what has the process done".
//! Neither answers the operational question "which requests arrived, in
//! order, with what outcome" — that is an access log. Every request the
//! serve layer finishes becomes one [`AccessRecord`], rendered as one
//! strict-JSON line (machine-parseable, no embedded newlines) carrying
//! the same `trace_id` the flight recorder assigned, so a log line can
//! be joined against `/trace.json` timelines directly.
//!
//! Records go two places:
//!
//! * a **sink** — stderr by default, or a file (`--access-log <path>`),
//!   written line-at-a-time under one mutex;
//! * a **bounded in-memory tail** ([`TAIL_CAP`] newest records, oldest
//!   dropped first) served back over `GET /logs?n=` without touching
//!   disk.
//!
//! The log is off by default and costs nothing when off: a disabled
//! [`record`] is one relaxed atomic load. The serve layer turns it on at
//! bind time; CLI one-shot commands never do.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::Json;

/// Records retained in the in-memory tail.
pub const TAIL_CAP: usize = 512;

/// One served request, ready to render as a strict-JSON log line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessRecord {
    /// Wall-clock milliseconds since the Unix epoch.
    pub ts_ms: u64,
    /// The flight-recorder trace id for `/query` requests; 0 for
    /// endpoints that run no query pipeline.
    pub trace_id: u64,
    /// Endpoint label (`"query"`, `"metrics"`, ..., `"other"`).
    pub endpoint: &'static str,
    /// The tenant the request was routed to (`"default"` for bare
    /// single-tenant URLs); empty for endpoints that touch no engine.
    pub tenant: String,
    /// HTTP status code sent.
    pub code: u16,
    /// Response body bytes sent.
    pub bytes: u64,
    /// Microseconds the connection waited in the accept queue before a
    /// worker picked it up (first request of a connection only; 0 for
    /// keep-alive follow-ups).
    pub queue_wait_us: u64,
    /// Microseconds from parsed request to flushed response.
    pub handle_us: u64,
    /// Whether a `/query` answer came from the result cache.
    pub cached: bool,
    /// The query's truncation reason (`"none"` when complete; empty for
    /// non-query endpoints).
    pub truncation: String,
}

impl AccessRecord {
    /// The record as a strict JSON object (insertion-ordered keys).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("ts_ms", Json::num_u(self.ts_ms)),
            ("trace_id", Json::num_u(self.trace_id)),
            ("endpoint", Json::Str(self.endpoint.to_owned())),
            ("tenant", Json::Str(self.tenant.clone())),
            ("code", Json::num_u(u64::from(self.code))),
            ("bytes", Json::num_u(self.bytes)),
            ("queue_wait_us", Json::num_u(self.queue_wait_us)),
            ("handle_us", Json::num_u(self.handle_us)),
            ("cached", Json::Bool(self.cached)),
            ("truncation", Json::Str(self.truncation.clone())),
        ])
    }
}

/// Wall-clock milliseconds since the Unix epoch (0 if the clock is
/// before it).
#[must_use]
pub fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

/// Where rendered log lines are written.
enum Sink {
    Stderr,
    File(std::fs::File),
}

/// An access log: enabled flag, line sink, bounded tail.
///
/// The serve layer uses the process-global one (via the free functions);
/// tests can make their own.
pub struct AccessLog {
    enabled: AtomicBool,
    sink: Mutex<Sink>,
    tail: Mutex<VecDeque<AccessRecord>>,
}

impl Default for AccessLog {
    fn default() -> Self {
        AccessLog::new()
    }
}

impl AccessLog {
    /// A disabled log writing to stderr.
    #[must_use]
    pub fn new() -> Self {
        AccessLog {
            enabled: AtomicBool::new(false),
            sink: Mutex::new(Sink::Stderr),
            tail: Mutex::new(VecDeque::new()),
        }
    }

    /// Turns the log on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the log is on.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Redirects lines from stderr to `path` (append, create).
    ///
    /// # Errors
    ///
    /// Returns the open failure as a displayable message.
    pub fn set_file(&self, path: &str) -> Result<(), String> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("{path}: {e}"))?;
        *self.sink.lock().expect("access-log sink poisoned") = Sink::File(file);
        Ok(())
    }

    /// Appends one record: renders the JSON line to the sink and pushes
    /// the record onto the tail (dropping the oldest past [`TAIL_CAP`]).
    /// One relaxed load when disabled.
    pub fn record(&self, rec: AccessRecord) {
        if !self.enabled() {
            return;
        }
        let line = rec.to_json().to_text();
        {
            let mut sink = self.sink.lock().expect("access-log sink poisoned");
            let _ = match &mut *sink {
                Sink::Stderr => writeln!(std::io::stderr().lock(), "{line}"),
                Sink::File(f) => writeln!(f, "{line}"),
            };
        }
        let mut tail = self.tail.lock().expect("access-log tail poisoned");
        if tail.len() >= TAIL_CAP {
            tail.pop_front();
        }
        tail.push_back(rec);
    }

    /// The newest `n` retained records, oldest first.
    ///
    /// # Panics
    ///
    /// Panics only if the tail mutex is poisoned.
    #[must_use]
    pub fn tail(&self, n: usize) -> Vec<AccessRecord> {
        let tail = self.tail.lock().expect("access-log tail poisoned");
        tail.iter().skip(tail.len().saturating_sub(n)).cloned().collect()
    }
}

/// The process-global access log.
#[must_use]
pub fn global() -> &'static AccessLog {
    static GLOBAL: OnceLock<AccessLog> = OnceLock::new();
    GLOBAL.get_or_init(AccessLog::new)
}

/// Turns the global access log on or off.
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

/// Redirects the global log's lines to a file.
///
/// # Errors
///
/// Returns the open failure as a displayable message.
pub fn set_file(path: &str) -> Result<(), String> {
    global().set_file(path)
}

/// Appends one record to the global log.
pub fn record(rec: AccessRecord) {
    global().record(rec);
}

/// The newest `n` globally retained records, oldest first.
#[must_use]
pub fn tail(n: usize) -> Vec<AccessRecord> {
    global().tail(n)
}

/// Renders records as a strict-JSON array (for `GET /logs`).
#[must_use]
pub fn to_json_array(records: &[AccessRecord]) -> Json {
    Json::Arr(records.iter().map(AccessRecord::to_json).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: u64, endpoint: &'static str) -> AccessRecord {
        AccessRecord {
            ts_ms: ts,
            trace_id: 0x1_0000_0000_0001,
            endpoint,
            tenant: "default".to_owned(),
            code: 200,
            bytes: 42,
            queue_wait_us: 7,
            handle_us: 123,
            cached: false,
            truncation: "none".to_owned(),
        }
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = AccessLog::new();
        log.record(rec(1, "query"));
        assert!(log.tail(10).is_empty());
    }

    #[test]
    fn lines_are_strict_json_with_required_keys() {
        let line = rec(5, "query").to_json().to_text();
        assert!(!line.contains('\n'), "one line per record");
        let parsed = Json::parse(&line).expect("strict JSON");
        for key in [
            "ts_ms",
            "trace_id",
            "endpoint",
            "tenant",
            "code",
            "bytes",
            "queue_wait_us",
            "handle_us",
            "cached",
            "truncation",
        ] {
            assert!(parsed.get(key).is_some(), "missing {key}: {line}");
        }
        assert_eq!(parsed.get("endpoint").unwrap().as_str(), Some("query"));
        assert_eq!(parsed.get("code").unwrap().as_u64(), Some(200));
    }

    #[test]
    fn tail_is_bounded_and_ordered() {
        let log = AccessLog::new();
        log.set_enabled(true);
        let path = std::env::temp_dir().join("prospector_access_log_test.jsonl");
        let _ = std::fs::remove_file(&path);
        log.set_file(path.to_str().unwrap()).expect("open log file");
        for i in 0..(TAIL_CAP as u64 + 10) {
            log.record(rec(i, "healthz"));
        }
        let tail = log.tail(usize::MAX);
        assert_eq!(tail.len(), TAIL_CAP);
        assert_eq!(tail[0].ts_ms, 10, "oldest 10 dropped");
        assert_eq!(tail.last().unwrap().ts_ms, TAIL_CAP as u64 + 9);
        let last3 = log.tail(3);
        assert_eq!(last3.len(), 3);
        assert_eq!(last3[0].ts_ms, TAIL_CAP as u64 + 7);
        // Every sink line parses as strict JSON.
        let text = std::fs::read_to_string(&path).expect("read log file");
        assert!(text.lines().count() >= TAIL_CAP);
        for line in text.lines() {
            Json::parse(line).expect("sink line is strict JSON");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_array_rendering_round_trips() {
        let arr = to_json_array(&[rec(1, "query"), rec(2, "metrics")]);
        let parsed = Json::parse(&arr.to_text()).unwrap();
        assert_eq!(parsed.as_arr().unwrap().len(), 2);
    }
}
