//! The observability substrate for the Prospector reproduction.
//!
//! Everything in this crate is dependency-free by design: the pipeline
//! crates sit below the corpora and CLI layers, so the instrumentation
//! layer must sit below *them* and bring nothing with it.
//!
//! Four pieces:
//!
//! * [`metrics`] — a process-global registry of named atomic counters and
//!   gauges. Hot loops keep local tallies and flush once per call;
//!   recording is a single relaxed atomic add.
//! * [`hist`] — fixed-size log2-bucket histograms (no allocation after
//!   registration, no locks on the record path).
//! * [`span`] — an RAII stage timer. Timing is gated on the global
//!   [`metrics::enabled`] flag so a disabled build pays one relaxed load
//!   per stage, not two `Instant::now()` calls.
//! * [`json`] — a small strict JSON value type, writer, and parser, used
//!   for the `--metrics-json` report and for index persistence.
//! * [`trace`] — the per-query flight recorder: seeded [`trace::TraceId`]
//!   allocation, an RAII [`trace::QuerySpan`] that buffers a query's
//!   timestamped events and flushes them into a bounded lock-sharded
//!   ring at finish, a slow-query log, and Chrome-trace / text exporters.
//! * [`prom`] — Prometheus text exposition rendering of a metric
//!   snapshot (counters, gauges, stages, and histograms as cumulative
//!   `_bucket{le=...}` series), backing the `serve` mode's `/metrics`.
//! * [`window`] — rolling-window histograms: lock-light rings of
//!   per-second delta histograms aggregated into 1m/5m views
//!   (p50/p90/p99 + rate), so the serve layer can answer "what was p99
//!   in the last minute", not just "since boot".
//! * [`log`] — the structured access log: one strict-JSON line per
//!   served request (trace id, endpoint, code, queue wait, handle time)
//!   to stderr or a file, plus a bounded in-memory tail for `GET /logs`.
//! * [`sketch`] — mergeable frequency sketches (count-min + space-saving
//!   top-K), allocation-free on record, for workload analytics: which
//!   query keys dominate, which miss, which truncate.
//! * [`profile`] — a cooperative sampling profiler: spans publish the
//!   thread's stage stack into a per-thread atomic word; a sampler folds
//!   all stacks at ~100 Hz into flamegraph.pl-compatible folded counts.
//!
//! [`rng`] is a bonus tenant: a tiny deterministic PRNG
//! ([`rng::SmallRng`]) for the seeded generators and simulations, living
//! here because this is the one crate every other crate can depend on.
//!
//! # Example
//!
//! ```
//! prospector_obs::metrics::set_enabled(true);
//! {
//!     let _span = prospector_obs::span::stage("search");
//!     prospector_obs::metrics::add("search.dfs_expansions", 42);
//! }
//! let snap = prospector_obs::metrics::snapshot();
//! assert_eq!(snap.counter("search.dfs_expansions"), Some(42));
//! assert!(snap.stage("search").is_some());
//! ```

pub mod hist;
pub mod json;
pub mod log;
pub mod metrics;
pub mod profile;
pub mod prom;
pub mod report;
pub mod rng;
pub mod sketch;
pub mod span;
pub mod trace;
pub mod window;

pub use json::Json;
pub use metrics::{add, gauge_set, set_enabled, snapshot, Snapshot};
pub use rng::SmallRng;
pub use sketch::{CountMinSketch, SpaceSaving};
pub use span::stage;
pub use trace::{QuerySpan, TraceId};
