//! Lock-free log2-bucket histograms.
//!
//! A [`Histogram`] is 64 atomic buckets; a recorded value lands in bucket
//! `⌊log2(v)⌋ + 1` (zero in bucket 0). Recording is one relaxed
//! fetch-add, so the type is safe to share across mining threads without
//! coordination. Count and sum are tracked exactly; quantiles are
//! bucket-resolution approximations, which is plenty for the latency
//! distributions of §5.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 64;

/// A concurrent log2-bucket histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// An immutable copy of a histogram's state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket observation counts (`buckets[i]` holds values in
    /// `[2^(i-1), 2^i)`; bucket 0 holds zeros).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Exact sum of all observed values (wrapping).
    pub sum: u64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Index of the bucket a value lands in.
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive upper bound of a bucket (`u64::MAX` for the last).
    #[must_use]
    pub fn bucket_limit(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= BUCKETS {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Copies out the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every bucket.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

impl HistSnapshot {
    /// Mean of the observed values (exact).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum as f64 / self.count as f64
            }
        }
    }

    /// Folds another snapshot into this one, bucket by bucket. The
    /// rolling-window views ([`crate::window`]) are built this way: each
    /// live slot's delta histogram merges into one aggregate.
    pub fn merge(&mut self, other: &HistSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, &theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Upper bound of the bucket containing the `q`-quantile (`q` in
    /// `[0, 1]`); 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Histogram::bucket_limit(i);
            }
        }
        Histogram::bucket_limit(BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64 - 1 + 1);
    }

    #[test]
    fn records_count_sum_and_quantiles() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1106);
        assert!((s.mean() - 1106.0 / 6.0).abs() < 1e-9);
        assert_eq!(s.quantile(0.0), 0);
        // Median lands in the bucket of 2..=3.
        assert_eq!(s.quantile(0.5), 3);
        assert!(s.quantile(1.0) >= 1000);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 80_000);
    }

    #[test]
    fn merge_folds_buckets_count_and_sum() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [0, 1, 100] {
            a.record(v);
        }
        for v in [2, 3, 1000] {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 6);
        assert_eq!(merged.sum, 1106);
        let reference = Histogram::new();
        for v in [0, 1, 100, 2, 3, 1000] {
            reference.record(v);
        }
        assert_eq!(merged, reference.snapshot());
        // Merging into an empty snapshot with shorter buckets resizes.
        let mut empty = HistSnapshot { buckets: Vec::new(), count: 0, sum: 0 };
        empty.merge(&merged);
        assert_eq!(empty, merged);
    }

    #[test]
    fn reset_clears() {
        let h = Histogram::new();
        h.record(5);
        h.reset();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0);
        assert!(s.buckets.iter().all(|&b| b == 0));
    }
}
