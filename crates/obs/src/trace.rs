//! The per-query flight recorder.
//!
//! The metric registry ([`crate::metrics`]) answers *"what has the
//! process done so far"*; it cannot say which of two concurrent queries
//! burned the DFS budget or missed the distance cache. This module adds
//! the Dapper-style per-request layer: every query gets a [`TraceId`],
//! an RAII [`QuerySpan`] buffers that query's timestamped events
//! privately (no locks, no atomics on the record path), and the whole
//! timeline is flushed into a bounded, lock-sharded ring buffer in one
//! shard-lock acquisition when the span finishes. Attribution therefore
//! happens *at flush time*: a query that never finishes publishes
//! nothing, and concurrent queries never interleave their events inside
//! a shard.
//!
//! On top of the ring:
//!
//! * a **slow-query log** — when a finished span's end-to-end latency
//!   meets the configured threshold, its full timeline is copied into a
//!   separate bounded log that ring eviction never touches;
//! * a **Chrome-trace exporter** ([`to_chrome_json`]) emitting the
//!   catapult `[{"ph":"X",...}]` array that `chrome://tracing` and
//!   Perfetto open directly;
//! * a **text timeline** ([`format_timeline`]) for the CLI's `explain`
//!   replay and the slow-query dump.
//!
//! Recording is off by default. A disabled recorder costs one relaxed
//! atomic load per [`QuerySpan`] (checked once at `begin`, cached as a
//! plain bool for every event site) and one relaxed load per
//! [`process_event`] site, and [`event_count`] stays zero.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;
use crate::rng::SmallRng;

/// Ring shards. Spans flush under exactly one shard lock (chosen by
/// trace id), so concurrent flushes on different queries rarely contend.
const RING_SHARDS: usize = 8;

/// Events retained per shard before the oldest are overwritten.
const RING_SHARD_CAP: usize = 1024;

/// Default slow-query retention; configurable per recorder
/// ([`Recorder::set_slow_log_cap`], the CLI's `--slow-log-cap N`).
/// Older entries are dropped first.
const DEFAULT_SLOW_LOG_CAP: usize = 32;

/// What one [`TraceEvent`] measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A timed interval: `value` is the duration in nanoseconds and
    /// `t_ns` the interval's start.
    Span,
    /// A counter attributed to the query: `value` is the count and
    /// `t_ns` the moment it was charged.
    Count,
}

impl EventKind {
    /// Stable lower-case label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Count => "count",
        }
    }
}

/// One timestamped, query-attributed event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The owning query (0 for process-level events).
    pub trace_id: u64,
    /// Pipeline stage the event belongs to (`"search"`, `"rank"`, ...).
    pub stage: &'static str,
    /// Interval or counter.
    pub kind: EventKind,
    /// What was measured (`"dfs_expansions"`, `"total"`, ...).
    pub key: &'static str,
    /// Duration in nanoseconds ([`EventKind::Span`]) or the counter
    /// value ([`EventKind::Count`]).
    pub value: u64,
    /// Nanoseconds since the recorder's epoch.
    pub t_ns: u64,
}

/// A per-query trace identifier.
///
/// Ids are a pure function of the recorder seed and an atomic allocation
/// counter: bit 48 is always set (so an id is never 0, which is reserved
/// for process-level events), bits 24..48 derive from the seed via one
/// splitmix64 draw, and bits 0..24 are the allocation index. Two runs
/// with the same seed therefore allocate identical id sequences, and
/// every id stays below 2^49 — exactly representable in the f64 JSON
/// number type, so ids survive serialization unmangled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The next id from the global recorder.
    #[must_use]
    pub fn next() -> TraceId {
        global().next_id()
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:x}", self.0)
    }
}

/// One retained slow query: its id, end-to-end latency, and timeline.
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// The query's trace id.
    pub trace_id: u64,
    /// End-to-end latency in nanoseconds.
    pub total_ns: u64,
    /// The full event timeline, in record order.
    pub events: Vec<TraceEvent>,
}

#[derive(Debug, Default)]
struct RingShard {
    buf: Vec<TraceEvent>,
    /// Next write position once `buf` reaches capacity.
    next: usize,
}

impl RingShard {
    fn push(&mut self, e: TraceEvent) {
        if self.buf.len() < RING_SHARD_CAP {
            self.buf.push(e);
        } else {
            self.buf[self.next] = e;
            self.next = (self.next + 1) % RING_SHARD_CAP;
        }
    }

    /// Oldest-first copy of the shard.
    fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }
}

/// A flight recorder: ring buffer, slow-query log, and id allocator.
///
/// The pipeline records into the process-global one (via the free
/// functions in this module); tests can make their own.
#[derive(Debug)]
pub struct Recorder {
    enabled: AtomicBool,
    /// Seed-derived 24-bit id prefix (see [`TraceId`]).
    id_base: AtomicU64,
    /// Allocation counter for the low 24 id bits.
    next_id: AtomicU64,
    /// Total events ever recorded (monotonic; eviction never decreases it).
    recorded: AtomicU64,
    /// Slow-query latency threshold in nanoseconds; 0 disables the log.
    slow_threshold_ns: AtomicU64,
    /// Slow queries retained before the oldest are dropped.
    slow_cap: AtomicU64,
    epoch: Instant,
    shards: Vec<Mutex<RingShard>>,
    slow: Mutex<Vec<SlowQuery>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// An empty, disabled recorder seeded with 0.
    #[must_use]
    pub fn new() -> Self {
        let r = Recorder {
            enabled: AtomicBool::new(false),
            id_base: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            slow_threshold_ns: AtomicU64::new(0),
            slow_cap: AtomicU64::new(DEFAULT_SLOW_LOG_CAP as u64),
            epoch: Instant::now(),
            shards: (0..RING_SHARDS).map(|_| Mutex::new(RingShard::default())).collect(),
            slow: Mutex::new(Vec::new()),
        };
        r.set_seed(0);
        r
    }

    /// Turns event recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether event recording is on.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Re-seeds the id allocator: the id prefix becomes a pure function
    /// of `seed` and the allocation counter restarts at 0.
    pub fn set_seed(&self, seed: u64) {
        let base = SmallRng::seed_from_u64(seed).next_u64() >> 40;
        self.id_base.store(base, Ordering::Relaxed);
        self.next_id.store(0, Ordering::Relaxed);
    }

    /// Sets the slow-query latency threshold (0 disables the log).
    pub fn set_slow_threshold_ns(&self, ns: u64) {
        self.slow_threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// The slow-query latency threshold in nanoseconds (0 = off).
    #[must_use]
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns.load(Ordering::Relaxed)
    }

    /// Sets how many slow queries are retained (clamped to at least 1).
    /// Shrinking below the current retention drops the oldest entries on
    /// the next insert.
    pub fn set_slow_log_cap(&self, cap: usize) {
        self.slow_cap.store(cap.max(1) as u64, Ordering::Relaxed);
    }

    /// How many slow queries are retained before the oldest is dropped.
    #[must_use]
    pub fn slow_log_cap(&self) -> usize {
        usize::try_from(self.slow_cap.load(Ordering::Relaxed)).unwrap_or(usize::MAX)
    }

    /// Drops every retained slow query (the ring, threshold, and cap are
    /// left alone). Returns how many entries were dropped.
    pub fn clear_slow(&self) -> usize {
        let mut slow = self.slow.lock().expect("slow log poisoned");
        let dropped = slow.len();
        slow.clear();
        dropped
    }

    /// Allocates the next trace id (see [`TraceId`] for the layout).
    #[must_use]
    pub fn next_id(&self) -> TraceId {
        let n = self.next_id.fetch_add(1, Ordering::Relaxed);
        let base = self.id_base.load(Ordering::Relaxed);
        TraceId((1 << 48) | (base << 24) | (n & 0xff_ffff))
    }

    /// Nanoseconds since this recorder was created (saturating).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Opens a query span. When recording is disabled this costs one
    /// relaxed atomic load, and every event call on the returned span is
    /// a plain branch.
    #[must_use]
    pub fn span(&self, id: TraceId) -> QuerySpan<'_> {
        let enabled = self.enabled();
        QuerySpan {
            recorder: self,
            id,
            started: enabled.then(Instant::now),
            begin_ns: if enabled { self.now_ns() } else { 0 },
            events: Vec::new(),
        }
    }

    /// Records a process-level (non-query) event, e.g. a CSR rebuild.
    /// One relaxed load when recording is disabled.
    pub fn process_event(&self, stage: &'static str, key: &'static str, value: u64) {
        if !self.enabled() {
            return;
        }
        let e = TraceEvent {
            trace_id: 0,
            stage,
            kind: EventKind::Count,
            key,
            value,
            t_ns: self.now_ns(),
        };
        self.flush(0, std::slice::from_ref(&e));
    }

    /// Publishes a finished timeline into the ring under one shard lock.
    fn flush(&self, trace_id: u64, events: &[TraceEvent]) {
        if events.is_empty() {
            return;
        }
        self.recorded.fetch_add(events.len() as u64, Ordering::Relaxed);
        let shard = &self.shards[(trace_id % RING_SHARDS as u64) as usize];
        let mut shard = shard.lock().expect("trace ring shard poisoned");
        for &e in events {
            shard.push(e);
        }
    }

    fn retain_slow(&self, entry: SlowQuery) {
        let cap = self.slow_log_cap();
        let mut slow = self.slow.lock().expect("slow log poisoned");
        while slow.len() >= cap {
            slow.remove(0);
        }
        slow.push(entry);
    }

    /// Total events ever recorded (eviction does not decrease this).
    #[must_use]
    pub fn event_count(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Every retained event: per shard oldest-first, then stably sorted
    /// by trace id, so one query's timeline is contiguous and batch
    /// exports are deterministic under any worker interleaving.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().expect("trace ring shard poisoned").snapshot());
        }
        out.sort_by_key(|e| e.trace_id);
        out
    }

    /// The retained timeline of one query, in record order.
    #[must_use]
    pub fn events_for(&self, id: TraceId) -> Vec<TraceEvent> {
        let shard = &self.shards[(id.0 % RING_SHARDS as u64) as usize];
        let shard = shard.lock().expect("trace ring shard poisoned");
        shard.snapshot().into_iter().filter(|e| e.trace_id == id.0).collect()
    }

    /// The retained slow queries, oldest first.
    #[must_use]
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow.lock().expect("slow log poisoned").clone()
    }

    /// Drops every retained event and slow query (the enabled flag, the
    /// seed, and [`event_count`](Recorder::event_count) are left alone).
    pub fn clear(&self) {
        for shard in &self.shards {
            *shard.lock().expect("trace ring shard poisoned") = RingShard::default();
        }
        self.slow.lock().expect("slow log poisoned").clear();
    }
}

/// A live per-query recording session.
///
/// Events accumulate in a private buffer — recording an event touches no
/// lock and no atomic — and publish to the recorder's ring in one shard
/// lock when the span finishes (or is dropped). A span opened while
/// recording is disabled ignores every event call.
#[derive(Debug)]
pub struct QuerySpan<'a> {
    recorder: &'a Recorder,
    id: TraceId,
    /// `Some` iff recording was enabled when the span opened.
    started: Option<Instant>,
    begin_ns: u64,
    events: Vec<TraceEvent>,
}

impl QuerySpan<'_> {
    /// The query's trace id.
    #[must_use]
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Whether this span is recording.
    #[must_use]
    pub fn recording(&self) -> bool {
        self.started.is_some()
    }

    /// Starts timing a stage; pass the result to
    /// [`QuerySpan::span_event`]. `None` when not recording, so a
    /// disabled run never calls `Instant::now`.
    #[must_use]
    pub fn timer(&self) -> Option<Instant> {
        self.started.map(|_| Instant::now())
    }

    /// Records a timed interval that began at `started` and ends now.
    /// Returns the measured duration in nanoseconds (0 when disabled).
    pub fn span_event(
        &mut self,
        stage: &'static str,
        key: &'static str,
        started: Option<Instant>,
    ) -> u64 {
        let (Some(_), Some(started)) = (self.started, started) else { return 0 };
        let dur = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let t_ns = self.recorder.now_ns().saturating_sub(dur);
        self.events.push(TraceEvent {
            trace_id: self.id.0,
            stage,
            kind: EventKind::Span,
            key,
            value: dur,
            t_ns,
        });
        dur
    }

    /// Attributes a counter value to this query.
    pub fn count(&mut self, stage: &'static str, key: &'static str, value: u64) {
        if self.started.is_none() {
            return;
        }
        self.events.push(TraceEvent {
            trace_id: self.id.0,
            stage,
            kind: EventKind::Count,
            key,
            value,
            t_ns: self.recorder.now_ns(),
        });
    }

    /// Ends the query: records the end-to-end `query.total` span, copies
    /// the timeline into the slow-query log if it met the threshold, and
    /// publishes everything to the ring. Returns the end-to-end latency
    /// in nanoseconds (0 when the span was not recording).
    pub fn finish(mut self) -> u64 {
        self.close()
    }

    fn close(&mut self) -> u64 {
        let Some(started) = self.started.take() else { return 0 };
        let total = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.events.push(TraceEvent {
            trace_id: self.id.0,
            stage: "query",
            kind: EventKind::Span,
            key: "total",
            value: total,
            t_ns: self.begin_ns,
        });
        let threshold = self.recorder.slow_threshold_ns();
        if threshold > 0 && total >= threshold {
            self.recorder.retain_slow(SlowQuery {
                trace_id: self.id.0,
                total_ns: total,
                events: self.events.clone(),
            });
        }
        self.recorder.flush(self.id.0, &self.events);
        self.events.clear();
        total
    }
}

impl Drop for QuerySpan<'_> {
    fn drop(&mut self) {
        // A span abandoned by an early return still publishes.
        let _ = self.close();
    }
}

/// The process-global flight recorder.
#[must_use]
pub fn global() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(Recorder::new)
}

/// Turns global event recording on or off.
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

/// Whether global event recording is on.
#[must_use]
pub fn enabled() -> bool {
    global().enabled()
}

/// Re-seeds the global id allocator (see [`Recorder::set_seed`]).
pub fn set_seed(seed: u64) {
    global().set_seed(seed);
}

/// Sets the global slow-query threshold in milliseconds (0 = off).
pub fn set_slow_threshold_ms(ms: u64) {
    global().set_slow_threshold_ns(ms.saturating_mul(1_000_000));
}

/// Sets the global slow-query retention cap (clamped to at least 1).
pub fn set_slow_log_cap(cap: usize) {
    global().set_slow_log_cap(cap);
}

/// Drops every globally retained slow query; returns how many were
/// dropped.
pub fn clear_slow() -> usize {
    global().clear_slow()
}

/// Opens a query span on the global recorder.
#[must_use]
pub fn span(id: TraceId) -> QuerySpan<'static> {
    global().span(id)
}

/// Records a process-level event on the global recorder.
pub fn process_event(stage: &'static str, key: &'static str, value: u64) {
    global().process_event(stage, key, value);
}

/// Total events ever recorded globally.
#[must_use]
pub fn event_count() -> u64 {
    global().event_count()
}

/// Every globally retained event (see [`Recorder::events`]).
#[must_use]
pub fn events() -> Vec<TraceEvent> {
    global().events()
}

/// The globally retained timeline of one query.
#[must_use]
pub fn events_for(id: TraceId) -> Vec<TraceEvent> {
    global().events_for(id)
}

/// The globally retained slow queries, oldest first.
#[must_use]
pub fn slow_queries() -> Vec<SlowQuery> {
    global().slow_queries()
}

/// Converts nanoseconds to catapult microseconds (fractional).
#[allow(clippy::cast_precision_loss)]
fn us(ns: u64) -> Json {
    Json::Num(ns as f64 / 1_000.0)
}

/// Renders events as a Chrome-trace (catapult) JSON array: spans become
/// `"ph":"X"` complete events and counters become `"ph":"C"` counter
/// events, with the trace id as the `tid` so each query gets its own
/// track. The output opens directly in `chrome://tracing` / Perfetto.
#[must_use]
pub fn to_chrome_json(events: &[TraceEvent]) -> Json {
    let mut out = Vec::with_capacity(events.len());
    for e in events {
        let name = if e.stage == "query" && e.key == "total" && e.kind == EventKind::Span {
            e.stage.to_owned()
        } else {
            format!("{}.{}", e.stage, e.key)
        };
        let mut pairs: Vec<(&str, Json)> = Vec::new();
        match e.kind {
            EventKind::Span => {
                pairs.push(("ph", Json::Str("X".to_owned())));
                pairs.push(("name", Json::Str(name)));
                pairs.push(("cat", Json::Str(e.stage.to_owned())));
                pairs.push(("ts", us(e.t_ns)));
                pairs.push(("dur", us(e.value)));
            }
            EventKind::Count => {
                pairs.push(("ph", Json::Str("C".to_owned())));
                pairs.push(("name", Json::Str(name)));
                pairs.push(("ts", us(e.t_ns)));
                pairs.push(("args", Json::Obj(vec![(e.key.to_owned(), Json::num_u(e.value))])));
            }
        }
        pairs.push(("pid", Json::num_u(1)));
        pairs.push(("tid", Json::num_u(e.trace_id)));
        out.push(Json::obj(pairs));
    }
    Json::Arr(out)
}

/// Renders one query's timeline as aligned text, e.g. for the CLI's
/// `explain` replay and the slow-query dump.
#[must_use]
pub fn format_timeline(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let t0 = events.iter().map(|e| e.t_ns).min().unwrap_or(0);
    for e in events {
        let at_us = (e.t_ns - t0) / 1_000;
        match e.kind {
            EventKind::Span => {
                #[allow(clippy::cast_precision_loss)]
                let ms = e.value as f64 / 1e6;
                let _ = writeln!(
                    out,
                    "  +{at_us:>7}µs  {:<22} {:>10.3}ms",
                    format!("{}.{}", e.stage, e.key),
                    ms,
                );
            }
            EventKind::Count => {
                let _ = writeln!(
                    out,
                    "  +{at_us:>7}µs  {:<22} {:>12}",
                    format!("{}.{}", e.stage, e.key),
                    e.value,
                );
            }
        }
    }
    out
}

/// Renders the slow-query log as text: one header plus timeline per
/// retained query.
#[must_use]
pub fn format_slow_log(slow: &[SlowQuery]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for q in slow {
        #[allow(clippy::cast_precision_loss)]
        let ms = q.total_ns as f64 / 1e6;
        let _ = writeln!(out, "slow query {:x}: {ms:.3}ms", q.trace_id);
        out.push_str(&format_timeline(&q.events));
    }
    out
}

/// Renders the slow-query log as a JSON array.
#[must_use]
pub fn slow_to_json(slow: &[SlowQuery]) -> Json {
    Json::Arr(
        slow.iter()
            .map(|q| {
                Json::obj(vec![
                    ("trace_id", Json::num_u(q.trace_id)),
                    ("total_ns", Json::num_u(q.total_ns)),
                    (
                        "events",
                        Json::Arr(
                            q.events
                                .iter()
                                .map(|e| {
                                    Json::obj(vec![
                                        ("stage", Json::Str(e.stage.to_owned())),
                                        ("kind", Json::Str(e.kind.label().to_owned())),
                                        ("key", Json::Str(e.key.to_owned())),
                                        ("value", Json::num_u(e.value)),
                                        ("t_ns", Json::num_u(e.t_ns)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing_and_count_zero() {
        let r = Recorder::new();
        let mut span = r.span(r.next_id());
        let t = span.timer();
        assert!(t.is_none());
        let dur = span.span_event("search", "total", t);
        assert_eq!(dur, 0);
        span.count("search", "dfs_expansions", 42);
        assert_eq!(span.finish(), 0);
        assert_eq!(r.event_count(), 0);
        assert!(r.events().is_empty());
    }

    #[test]
    fn enabled_spans_publish_at_finish_only() {
        let r = Recorder::new();
        r.set_enabled(true);
        let id = r.next_id();
        let mut span = r.span(id);
        let t = span.timer();
        span.count("search", "dfs_expansions", 7);
        let dur = span.span_event("search", "total", t);
        // Nothing visible until the flush.
        assert_eq!(r.event_count(), 0);
        let total = span.finish();
        assert!(total >= dur);
        let events = r.events_for(id);
        // count + span + the query.total envelope.
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::Count);
        assert_eq!(events[0].value, 7);
        assert_eq!(events[2].stage, "query");
        assert_eq!(events[2].key, "total");
        assert_eq!(events[2].value, total);
        assert_eq!(r.event_count(), 3);
    }

    #[test]
    fn dropped_span_still_publishes() {
        let r = Recorder::new();
        r.set_enabled(true);
        let id = r.next_id();
        {
            let mut span = r.span(id);
            span.count("search", "paths", 1);
        }
        assert_eq!(r.events_for(id).len(), 2, "count + query.total envelope");
    }

    #[test]
    fn ids_are_deterministic_in_seed_and_unique() {
        let r = Recorder::new();
        r.set_seed(7);
        let a: Vec<u64> = (0..100).map(|_| r.next_id().0).collect();
        r.set_seed(7);
        let b: Vec<u64> = (0..100).map(|_| r.next_id().0).collect();
        assert_eq!(a, b);
        r.set_seed(8);
        let c: Vec<u64> = (0..100).map(|_| r.next_id().0).collect();
        assert_ne!(a, c);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "ids are unique");
        for &id in &a {
            assert_ne!(id, 0, "0 is reserved for process events");
            assert!(id < (1 << 49), "ids stay f64-exact");
        }
    }

    #[test]
    fn ring_overwrites_oldest_but_event_count_is_monotonic() {
        let r = Recorder::new();
        r.set_enabled(true);
        // All events land in shard 0 (trace_id 0) and overflow it.
        for i in 0..(RING_SHARD_CAP as u64 + 10) {
            r.process_event("graph", "tick", i);
        }
        let events = r.events();
        assert_eq!(events.len(), RING_SHARD_CAP);
        assert_eq!(events[0].value, 10, "oldest 10 overwritten");
        assert_eq!(events.last().unwrap().value, RING_SHARD_CAP as u64 + 9);
        assert_eq!(r.event_count(), RING_SHARD_CAP as u64 + 10);
    }

    #[test]
    fn slow_queries_survive_ring_eviction() {
        let r = Recorder::new();
        r.set_enabled(true);
        r.set_slow_threshold_ns(1); // everything is slow
        let id = r.next_id();
        let mut span = r.span(id);
        span.count("search", "dfs_expansions", 5);
        let total = span.finish();
        // Now flood the ring until the slow query's events are evicted.
        for _ in 0..(RING_SHARDS * RING_SHARD_CAP + 64) {
            r.process_event("graph", "noise", 0);
        }
        let slow = r.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].trace_id, id.0);
        assert_eq!(slow[0].total_ns, total);
        assert_eq!(slow[0].events.len(), 2);
        // Threshold 0 disables retention.
        r.set_slow_threshold_ns(0);
        let mut span = r.span(r.next_id());
        span.count("search", "dfs_expansions", 1);
        span.finish();
        assert_eq!(r.slow_queries().len(), 1);
    }

    #[test]
    fn slow_log_is_bounded() {
        let r = Recorder::new();
        r.set_enabled(true);
        r.set_slow_threshold_ns(1);
        let first = r.next_id();
        r.span(first).finish();
        for _ in 0..DEFAULT_SLOW_LOG_CAP {
            r.span(r.next_id()).finish();
        }
        let slow = r.slow_queries();
        assert_eq!(slow.len(), DEFAULT_SLOW_LOG_CAP);
        assert!(slow.iter().all(|q| q.trace_id != first.0), "oldest dropped");
    }

    #[test]
    fn slow_log_cap_is_configurable_and_clearable() {
        let r = Recorder::new();
        r.set_enabled(true);
        r.set_slow_threshold_ns(1);
        r.set_slow_log_cap(3);
        assert_eq!(r.slow_log_cap(), 3);
        let ids: Vec<TraceId> = (0..5).map(|_| r.next_id()).collect();
        for &id in &ids {
            r.span(id).finish();
        }
        let slow = r.slow_queries();
        assert_eq!(slow.len(), 3, "cap 3 retains the newest 3");
        assert_eq!(slow[0].trace_id, ids[2].0);
        // Shrinking the cap evicts down on the next insert.
        r.set_slow_log_cap(1);
        r.span(r.next_id()).finish();
        assert_eq!(r.slow_queries().len(), 1);
        // Zero clamps to one: the log cannot be silently disabled by cap.
        r.set_slow_log_cap(0);
        assert_eq!(r.slow_log_cap(), 1);
        // clear_slow drops everything but keeps threshold and cap.
        assert_eq!(r.clear_slow(), 1);
        assert!(r.slow_queries().is_empty());
        r.span(r.next_id()).finish();
        assert_eq!(r.slow_queries().len(), 1, "retention continues after clear");
    }

    #[test]
    fn chrome_export_shapes_spans_and_counters() {
        let r = Recorder::new();
        r.set_enabled(true);
        let id = r.next_id();
        let mut span = r.span(id);
        let t = span.timer();
        span.count("search", "dfs_expansions", 3);
        span.span_event("search", "total", t);
        span.finish();
        let doc = to_chrome_json(&r.events());
        let text = doc.to_text();
        let parsed = Json::parse(&text).unwrap();
        let arr = parsed.as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        let counter = &arr[0];
        assert_eq!(counter.get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(
            counter.get("args").unwrap().get("dfs_expansions").unwrap().as_u64(),
            Some(3)
        );
        let span_ev = &arr[1];
        assert_eq!(span_ev.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span_ev.get("name").unwrap().as_str(), Some("search.total"));
        assert!(span_ev.get("dur").unwrap().as_f64().is_some());
        assert_eq!(span_ev.get("tid").unwrap().as_u64(), Some(id.0));
        let envelope = &arr[2];
        assert_eq!(envelope.get("name").unwrap().as_str(), Some("query"));
    }

    #[test]
    fn timeline_and_slow_log_render() {
        let r = Recorder::new();
        r.set_enabled(true);
        r.set_slow_threshold_ns(1);
        let id = r.next_id();
        let mut span = r.span(id);
        let t = span.timer();
        span.count("search", "paths", 12);
        span.span_event("search", "total", t);
        span.finish();
        let text = format_timeline(&r.events_for(id));
        assert!(text.contains("search.paths"), "{text}");
        assert!(text.contains("12"), "{text}");
        assert!(text.contains("query.total"), "{text}");
        let slow_text = format_slow_log(&r.slow_queries());
        assert!(slow_text.contains("slow query"), "{slow_text}");
        let slow_json = slow_to_json(&r.slow_queries()).to_text();
        let parsed = Json::parse(&slow_json).unwrap();
        assert_eq!(parsed.as_arr().unwrap().len(), 1);
    }

    #[test]
    fn events_sorted_by_trace_id_keep_per_query_order() {
        let r = Recorder::new();
        r.set_enabled(true);
        let a = r.next_id();
        let b = r.next_id();
        // Interleave: open b's span first, finish a's first.
        let mut sb = r.span(b);
        let mut sa = r.span(a);
        sa.count("search", "paths", 1);
        sa.count("rank", "comparisons", 2);
        sa.finish();
        sb.count("search", "paths", 3);
        sb.finish();
        let events = r.events();
        let a_events: Vec<_> = events.iter().filter(|e| e.trace_id == a.0).collect();
        assert_eq!(a_events[0].stage, "search");
        assert_eq!(a_events[1].stage, "rank");
        // Sorted by id: all of a's events precede all of b's.
        let first_b = events.iter().position(|e| e.trace_id == b.0).unwrap();
        let last_a = events.iter().rposition(|e| e.trace_id == a.0).unwrap();
        assert!(last_a < first_b);
    }
}
