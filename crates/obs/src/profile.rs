//! Cooperative sampling profiler over stage spans.
//!
//! Each thread publishes its current stage-span stack into a per-thread
//! atomic slot: up to [`MAX_DEPTH`] frames, each an 8-bit interned stage
//! id, packed into one `u64` so a single atomic store publishes the whole
//! stack and a single atomic load samples it tear-free. [`crate::stage`]
//! pushes on construction and pops on drop whenever profiling is enabled,
//! so instrumented code needs no changes beyond its existing spans.
//!
//! A sampler thread (the serve layer's, at ~100 Hz) calls [`sample_all`],
//! which folds every thread's current stack into a fixed open-addressing
//! table of atomic counters — the sample path takes no locks besides the
//! registry mutex and performs no allocation. [`render_folded`] exports
//! the counts in flamegraph.pl's folded format (`frame;frame;frame N`),
//! and [`chrome_events`] emits them as a Chrome-trace counter event.
//!
//! This is *cooperative* profiling: only code inside stage spans is
//! attributed, and threads between spans sample as `idle`. The trade-off
//! versus signal-based profiling (no `SIGPROF`, no unwinding, no signal
//! safety concerns) is discussed in DESIGN.md §13.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::Json;
use crate::sketch::mix64;

/// Maximum stack frames published per thread; deeper frames still balance
/// push/pop but are not sampled.
pub const MAX_DEPTH: usize = 8;

/// Maximum distinct stage names (8-bit ids; 0 is reserved for "empty").
const MAX_STAGES: usize = 255;

/// Folded-stack table slots (power of two). With well under a hundred
/// distinct stacks in practice, collisions are rare.
const FOLD_SLOTS: usize = 1024;

/// Probe limit before a sample is dropped instead of folded.
const MAX_PROBE: usize = 32;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SAMPLES: AtomicU64 = AtomicU64::new(0);

/// Turn the profiler on or off. Spans started while disabled are never
/// published; flipping mid-span is safe (pops are depth-balanced locally).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether stacks are currently being published and sampled.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Interned stage names: id `i + 1` maps to `names()[i]`.
fn names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Intern a stage name, returning its nonzero 8-bit id, or 0 when the
/// table is full (the frame is then skipped, not misattributed).
fn intern(name: &'static str) -> u8 {
    let mut table = names().lock().unwrap();
    if let Some(i) = table.iter().position(|&n| n == name) {
        return (i + 1) as u8;
    }
    if table.len() >= MAX_STAGES {
        return 0;
    }
    table.push(name);
    table.len() as u8
}

/// Per-thread published stack: one atomic word, stored whole on every
/// push/pop so the sampler never observes a torn stack.
struct Slot {
    stack: AtomicU64,
}

fn registry() -> &'static Mutex<Vec<Arc<Slot>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Slot>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

struct ThreadState {
    slot: std::cell::RefCell<Option<Arc<Slot>>>,
    bits: std::cell::Cell<u64>,
    depth: std::cell::Cell<u32>,
}

thread_local! {
    static TLS: ThreadState = const {
        ThreadState {
            slot: std::cell::RefCell::new(None),
            bits: std::cell::Cell::new(0),
            depth: std::cell::Cell::new(0),
        }
    };
}

/// Publish `bits` as this thread's current stack, registering the
/// thread's slot on first use.
fn publish(state: &ThreadState, bits: u64) {
    let mut slot = state.slot.borrow_mut();
    let slot = slot.get_or_insert_with(|| {
        let s = Arc::new(Slot { stack: AtomicU64::new(0) });
        registry().lock().unwrap().push(Arc::clone(&s));
        s
    });
    slot.stack.store(bits, Ordering::Release);
}

/// Push a stage frame for the current thread. Returns whether a matching
/// [`pop`] is owed (i.e. profiling was enabled at push time).
pub fn push(name: &'static str) -> bool {
    if !enabled() {
        return false;
    }
    let id = intern(name);
    TLS.with(|t| {
        let depth = t.depth.get();
        t.depth.set(depth + 1);
        if (depth as usize) < MAX_DEPTH && id != 0 {
            let bits = t.bits.get() | u64::from(id) << (8 * depth);
            t.bits.set(bits);
            publish(t, bits);
        }
    });
    true
}

/// Pop the innermost stage frame pushed by [`push`].
pub fn pop() {
    TLS.with(|t| {
        let depth = t.depth.get();
        if depth == 0 {
            return;
        }
        let depth = depth - 1;
        t.depth.set(depth);
        if (depth as usize) < MAX_DEPTH {
            let bits = t.bits.get() & !(0xffu64 << (8 * depth));
            t.bits.set(bits);
            publish(t, bits);
        }
    });
}

/// Folded-stack counters: open addressing, keys are the packed stack
/// words offset by one so 0 can mean "empty slot" (the idle stack, packed
/// as 0, is stored as 1). Counts are plain atomics so concurrent samplers
/// and readers need no lock.
struct FoldTable {
    keys: Box<[AtomicU64]>,
    counts: Box<[AtomicU64]>,
    dropped: AtomicU64,
}

impl FoldTable {
    fn record(&self, bits: u64) {
        let stored = bits.wrapping_add(1);
        let mask = FOLD_SLOTS - 1;
        let mut idx = (mix64(bits) as usize) & mask;
        for _ in 0..MAX_PROBE {
            let k = self.keys[idx].load(Ordering::Relaxed);
            if k == stored {
                self.counts[idx].fetch_add(1, Ordering::Relaxed);
                return;
            }
            if k == 0 {
                match self.keys[idx].compare_exchange(
                    0,
                    stored,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        self.counts[idx].fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Err(actual) if actual == stored => {
                        self.counts[idx].fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Err(_) => {}
                }
            }
            idx = (idx + 1) & mask;
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }
}

fn fold_table() -> &'static FoldTable {
    static TABLE: OnceLock<FoldTable> = OnceLock::new();
    TABLE.get_or_init(|| FoldTable {
        keys: (0..FOLD_SLOTS).map(|_| AtomicU64::new(0)).collect(),
        counts: (0..FOLD_SLOTS).map(|_| AtomicU64::new(0)).collect(),
        dropped: AtomicU64::new(0),
    })
}

/// Sample every registered thread's published stack into the fold table.
/// Allocation-free (pinned by the `heat_overhead` bench); call at a fixed
/// cadence (~100 Hz) from a dedicated thread.
pub fn sample_all() {
    if !enabled() {
        return;
    }
    let table = fold_table();
    let reg = registry().lock().unwrap();
    for slot in reg.iter() {
        table.record(slot.stack.load(Ordering::Acquire));
    }
    SAMPLES.fetch_add(reg.len() as u64, Ordering::Relaxed);
}

/// Total stack samples taken since start (or the last [`reset`]).
#[must_use]
pub fn samples() -> u64 {
    SAMPLES.load(Ordering::Relaxed)
}

/// Samples dropped because the fold table was full.
#[must_use]
pub fn dropped() -> u64 {
    fold_table().dropped.load(Ordering::Relaxed)
}

/// Decode a packed stack word into `name;name;name` (or `idle` for the
/// empty stack).
fn decode(bits: u64, table: &[&'static str], out: &mut String) {
    if bits == 0 {
        out.push_str("idle");
        return;
    }
    for frame in 0..MAX_DEPTH {
        let id = (bits >> (8 * frame)) & 0xff;
        if id == 0 {
            break;
        }
        if frame > 0 {
            out.push(';');
        }
        match table.get(id as usize - 1) {
            Some(name) => out.push_str(name),
            None => out.push('?'),
        }
    }
}

/// Folded stacks with counts, highest count first (ties: stack name
/// ascending, so output is deterministic for a fixed sample set).
#[must_use]
pub fn folded() -> Vec<(String, u64)> {
    let table = fold_table();
    let names = names().lock().unwrap();
    let mut out = Vec::new();
    for i in 0..FOLD_SLOTS {
        let k = table.keys[i].load(Ordering::Relaxed);
        if k == 0 {
            continue;
        }
        let count = table.counts[i].load(Ordering::Relaxed);
        if count == 0 {
            continue;
        }
        let mut stack = String::new();
        decode(k.wrapping_sub(1), &names, &mut stack);
        out.push((stack, count));
    }
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// Render the fold table in flamegraph.pl's folded format: one
/// `frame;frame;frame count` line per distinct stack.
#[must_use]
pub fn render_folded() -> String {
    let mut out = String::new();
    for (stack, count) in folded() {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&count.to_string());
        out.push('\n');
    }
    out
}

/// The fold table as Chrome-trace counter events, mergeable into the
/// flight recorder's `trace.json` export: one `ph:"C"` event whose args
/// carry each folded stack as a series.
#[must_use]
pub fn chrome_events() -> Vec<Json> {
    let stacks = folded();
    if stacks.is_empty() {
        return Vec::new();
    }
    let args = Json::Obj(
        stacks.into_iter().map(|(stack, count)| (stack, Json::num_u(count))).collect(),
    );
    vec![Json::Obj(vec![
        ("name".to_owned(), Json::Str("profile.samples".to_owned())),
        ("cat".to_owned(), Json::Str("profile".to_owned())),
        ("ph".to_owned(), Json::Str("C".to_owned())),
        ("ts".to_owned(), Json::num_u(0)),
        ("pid".to_owned(), Json::num_u(1)),
        ("tid".to_owned(), Json::num_u(0)),
        ("args".to_owned(), args),
    ])]
}

/// Zero the fold table and sample counter (for tests and benches). Does
/// not unregister thread slots or forget interned names.
pub fn reset() {
    let table = fold_table();
    for i in 0..FOLD_SLOTS {
        table.keys[i].store(0, Ordering::Relaxed);
        table.counts[i].store(0, Ordering::Relaxed);
    }
    table.dropped.store(0, Ordering::Relaxed);
    SAMPLES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All profiler tests share process-global state (the enabled flag,
    /// fold table, and this thread's published stack), so they run as one
    /// test body to avoid interleaving.
    #[test]
    fn push_pop_sample_and_render() {
        set_enabled(true);
        // Register this thread's slot (lazily created on first push), then
        // start counting from a clean fold table.
        push("warmup");
        pop();
        reset();

        // An empty stack samples as idle. (Counts are asserted as lower
        // bounds where other test threads may also have registered slots.)
        sample_all();
        let stacks = folded();
        assert!(stacks.iter().any(|(s, c)| s == "idle" && *c >= 1), "no idle stack in {stacks:?}");

        // Nested frames publish innermost-last and unwind cleanly. The
        // alpha/beta stacks are unique to this thread, so their counts
        // are exact.
        let pushed = push("alpha");
        assert!(pushed);
        push("beta");
        sample_all();
        pop();
        sample_all();
        pop();
        sample_all();

        let stacks = folded();
        let get = |name: &str| stacks.iter().find(|(s, _)| s == name).map(|&(_, c)| c);
        assert_eq!(get("alpha;beta"), Some(1));
        assert_eq!(get("alpha"), Some(1));
        assert!(get("idle").unwrap_or(0) >= 2);
        assert!(samples() >= 4);
        assert_eq!(dropped(), 0);

        // Folded rendering matches flamegraph.pl's line format.
        let rendered = render_folded();
        for line in rendered.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("line must be `stack count`");
            assert!(!stack.is_empty() && !stack.contains(' '));
            assert!(count.parse::<u64>().is_ok(), "bad count in {line:?}");
        }
        assert!(rendered.lines().any(|l| l.starts_with("alpha;beta ")));

        // Chrome export carries every folded stack as a counter series.
        let events = chrome_events();
        assert_eq!(events.len(), 1);
        let args = events[0].get("args").unwrap().as_obj().unwrap();
        assert!(args.iter().any(|(k, _)| k == "alpha;beta"));

        // Frames deeper than MAX_DEPTH are skipped but stay balanced.
        for _ in 0..(MAX_DEPTH + 3) {
            push("deep");
        }
        for _ in 0..(MAX_DEPTH + 3) {
            pop();
        }
        sample_all();
        assert!(folded().iter().any(|(s, _)| s == "idle"));

        // Disabled pushes report nothing to pop.
        set_enabled(false);
        assert!(!push("gamma"));
        let before = samples();
        sample_all();
        assert_eq!(samples(), before, "sampling while disabled must be a no-op");
        reset();
    }
}
