//! RAII stage timers.
//!
//! A [`Span`] measures the wall-clock time between its creation and its
//! drop and folds it into the global stage table under its name. Spans
//! nest freely — `stage("build")` around the whole assembly and
//! `stage("mine")` inside it each record their own stage, so the report
//! shows both the envelope and the parts.
//!
//! When the global [`crate::metrics::enabled`] flag is off, creating a
//! span costs one relaxed atomic load and records nothing.
//!
//! Spans double as the cooperative profiler's stack frames: when
//! [`crate::profile::enabled`] is on, creating a span pushes its name
//! onto the thread's published stage stack and dropping it pops, so the
//! sampler attributes wall-clock to whatever spans are live.

use std::time::Instant;

use crate::{metrics, profile};

/// A live stage timer; drop it to record.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    /// Whether this span pushed a profiler frame it must pop on drop.
    pushed: bool,
}

/// Starts a span for the named stage (no-op unless metrics are enabled).
#[must_use]
pub fn stage(name: &'static str) -> Span {
    let start = if metrics::enabled() { Some(Instant::now()) } else { None };
    let pushed = profile::push(name);
    Span { name, start, pushed }
}

impl Span {
    /// Ends the span early (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.pushed {
            profile::pop();
        }
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            metrics::global().record_stage(self.name, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        metrics::set_enabled(false);
        {
            let _s = stage("span-test-disabled");
        }
        assert!(metrics::snapshot().stage("span-test-disabled").is_none());
    }

    #[test]
    fn enabled_spans_record_nested_durations() {
        metrics::set_enabled(true);
        {
            let _outer = stage("span-test-outer");
            let inner = stage("span-test-inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
            inner.finish();
        }
        metrics::set_enabled(false);
        let snap = metrics::snapshot();
        let outer = snap.stage("span-test-outer").unwrap();
        let inner = snap.stage("span-test-inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(inner.total_ns >= 2_000_000, "slept 2ms, recorded {}ns", inner.total_ns);
        assert!(outer.total_ns >= inner.total_ns, "outer contains inner");
    }
}
