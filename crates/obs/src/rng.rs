//! A tiny deterministic PRNG for the seeded generators and simulations.
//!
//! [`SmallRng`] is a splitmix64 stream: one 64-bit state cell, two
//! multiplications per draw, full 2^64 period, and excellent statistical
//! behavior for simulation workloads. It is explicitly **not** a
//! cryptographic generator. It lives in this crate because every other
//! crate already depends on `prospector-obs`, so generators and tests
//! share one implementation without dependency cycles.

use std::ops::{Range, RangeInclusive};

/// A small, fast, seedable PRNG (splitmix64).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

/// Integer ranges accepted by [`SmallRng::gen_range`].
pub trait UsizeRange {
    /// The inclusive `(low, high)` bounds.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn inclusive_bounds(self) -> (usize, usize);
}

impl UsizeRange for Range<usize> {
    fn inclusive_bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "gen_range called with empty range");
        (self.start, self.end - 1)
    }
}

impl UsizeRange for RangeInclusive<usize> {
    fn inclusive_bounds(self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "gen_range called with empty range");
        (*self.start(), *self.end())
    }
}

impl SmallRng {
    /// Creates a generator whose stream is a pure function of `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform integer in the given (non-empty) range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: UsizeRange>(&mut self, range: R) -> usize {
        let (lo, hi) = range.inclusive_bounds();
        let span = (hi - lo) as u64 + 1;
        // span == 2^64 is impossible on 64-bit (hi - lo < usize::MAX).
        #[allow(clippy::cast_possible_truncation)]
        {
            lo + (self.next_u64() % span) as usize
        }
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    #[allow(clippy::cast_precision_loss)]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_everything() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5)] = true;
            let v = rng.gen_range(10..=12);
            assert!((10..=12).contains(&v));
        }
        assert!(seen.iter().all(|&s| s), "all of 0..5 drawn in 500 tries");
        assert_eq!(rng.gen_range(3..4), 3);
        assert_eq!(rng.gen_range(9..=9), 9);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = SmallRng::seed_from_u64(0).gen_range(5..5);
    }

    #[test]
    fn floats_are_uniformish() {
        let mut rng = SmallRng::seed_from_u64(123);
        let n = 10_000;
        let mut sum = 0.0;
        let mut below_half = 0;
        for _ in 0..n {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            if x < 0.5 {
                below_half += 1;
            }
        }
        let mean = sum / f64::from(n);
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
        assert!((4_500..5_500).contains(&below_half));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1_700..2_300).contains(&hits), "p=0.2 gave {hits}/10000");
        assert!(!SmallRng::seed_from_u64(1).gen_bool(0.0));
        assert!(SmallRng::seed_from_u64(1).gen_bool(1.0));
    }
}
