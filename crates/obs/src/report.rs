//! Rendering metric snapshots: machine-readable JSON (for
//! `--metrics-json` and the bench crate) and a human text block (for
//! `--metrics` and the `stats` subcommand).

use crate::json::Json;
use crate::metrics::Snapshot;

/// The six canonical pipeline stages, in pipeline order. The JSON report
/// always carries all of them (zeroed when a stage did not run) so
/// downstream consumers can index unconditionally.
pub const PIPELINE_STAGES: [&str; 6] = ["build", "mine", "generalize", "search", "rank", "synth"];

/// Converts a snapshot to the `--metrics-json` document.
#[must_use]
pub fn to_json(snap: &Snapshot) -> Json {
    let mut stages: Vec<(String, Json)> = Vec::new();
    for name in PIPELINE_STAGES {
        let stat = snap.stage(name).unwrap_or_default();
        stages.push((
            name.to_owned(),
            Json::obj(vec![
                ("count", Json::num_u(stat.count)),
                ("total_ns", Json::num_u(stat.total_ns)),
                ("mean_ns", Json::num_u(stat.mean_ns())),
                ("max_ns", Json::num_u(stat.max_ns)),
            ]),
        ));
    }
    for (name, stat) in &snap.stages {
        if PIPELINE_STAGES.contains(&name.as_str()) {
            continue;
        }
        stages.push((
            name.clone(),
            Json::obj(vec![
                ("count", Json::num_u(stat.count)),
                ("total_ns", Json::num_u(stat.total_ns)),
                ("mean_ns", Json::num_u(stat.mean_ns())),
                ("max_ns", Json::num_u(stat.max_ns)),
            ]),
        ));
    }
    Json::obj(vec![
        ("stages", Json::Obj(stages)),
        // Rolling-window views (empty object outside serve mode, where
        // no rings are registered) ride along so one report carries both
        // the since-boot aggregates and the recent-window story.
        ("windows", windows_to_json()),
        (
            "counters",
            Json::Obj(snap.counters.iter().map(|(k, &v)| (k.clone(), Json::num_u(v))).collect()),
        ),
        (
            "gauges",
            Json::Obj(snap.gauges.iter().map(|(k, &v)| (k.clone(), Json::num_u(v))).collect()),
        ),
        (
            "histograms",
            Json::Obj(
                snap.hists
                    .iter()
                    .map(|(k, h)| {
                        (
                            k.clone(),
                            Json::obj(vec![
                                ("count", Json::num_u(h.count)),
                                ("sum", Json::num_u(h.sum)),
                                ("p50", Json::num_u(h.quantile(0.5))),
                                ("p90", Json::num_u(h.quantile(0.9))),
                                ("p99", Json::num_u(h.quantile(0.99))),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The global rolling-window rings as a JSON object: ring name →
/// window label → `{count, rate, p50, p90, p99}`. Values carry the
/// units the ring was recorded in (the serve layer records nanoseconds).
#[must_use]
pub fn windows_to_json() -> Json {
    let views = crate::window::views(&crate::window::STANDARD_WINDOWS);
    Json::Obj(
        views
            .into_iter()
            .map(|rv| {
                (
                    rv.name,
                    Json::Obj(
                        rv.windows
                            .iter()
                            .map(|(label, s)| {
                                ((*label).to_owned(), Json::obj(vec![
                                    ("count", Json::num_u(s.count)),
                                    ("rate", Json::Num(if s.rate.is_finite() { s.rate } else { 0.0 })),
                                    ("p50", Json::num_u(s.p50)),
                                    ("p90", Json::num_u(s.p90)),
                                    ("p99", Json::num_u(s.p99)),
                                ]))
                            })
                            .collect(),
                    ),
                )
            })
            .collect(),
    )
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders a snapshot as an aligned text block.
#[must_use]
pub fn to_text(snap: &Snapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "--- metrics ---");
    let has_timing = snap.stages.values().any(|s| s.count > 0);
    if has_timing {
        let _ = writeln!(out, "stages (count / total / mean / max):");
        let known = PIPELINE_STAGES.iter().filter_map(|&n| Some((n, snap.stage(n)?)));
        let extra = snap
            .stages
            .iter()
            .filter(|(n, _)| !PIPELINE_STAGES.contains(&n.as_str()))
            .map(|(n, &s)| (n.as_str(), s));
        for (name, stat) in known.chain(extra) {
            let _ = writeln!(
                out,
                "  {name:<12} {:>6}  {:>10}  {:>10}  {:>10}",
                stat.count,
                fmt_ns(stat.total_ns),
                fmt_ns(stat.mean_ns()),
                fmt_ns(stat.max_ns),
            );
        }
    }
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "  {name:<36} {value}");
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        for (name, value) in &snap.gauges {
            let _ = writeln!(out, "  {name:<36} {value}");
        }
    }
    for (name, h) in &snap.hists {
        let _ = writeln!(
            out,
            "hist {name}: n={} mean={:.1} p50={} p99={}",
            h.count,
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.99)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn json_report_always_has_all_pipeline_stages() {
        let r = Registry::new();
        r.record_stage("search", 1_000);
        r.add("search.dfs_expansions", 7);
        r.gauge_set("engine.dist_cache.entries", 3);
        let doc = to_json(&r.snapshot());
        let stages = doc.get("stages").unwrap();
        for name in PIPELINE_STAGES {
            let s = stages.get(name).unwrap_or_else(|| panic!("stage {name} missing"));
            assert!(s.get("total_ns").unwrap().as_u64().is_some());
        }
        assert_eq!(stages.get("search").unwrap().get("total_ns").unwrap().as_u64(), Some(1_000));
        assert_eq!(
            doc.get("counters").unwrap().get("search.dfs_expansions").unwrap().as_u64(),
            Some(7)
        );
        // The document is valid JSON text.
        let text = doc.to_text();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn text_report_lists_counters() {
        let r = Registry::new();
        r.add("mine.cast_sites", 12);
        r.record_stage("mine", 2_500_000);
        let text = to_text(&r.snapshot());
        assert!(text.contains("mine.cast_sites"));
        assert!(text.contains("2.50ms"));
    }
}
