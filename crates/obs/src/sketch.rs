//! Mergeable frequency sketches for workload analytics.
//!
//! Two std-only summaries over streams of `u64` keys:
//!
//! - [`CountMinSketch`] — a fixed-size counter matrix giving frequency
//!   estimates that never underestimate and overestimate by at most
//!   `e/width * N` with probability `1 - (1/2)^depth`.
//! - [`SpaceSaving`] — the Metwally et al. top-K heavy-hitter tracker:
//!   at most `cap` tracked keys, each with a count and an error bound
//!   (`count - err` is a guaranteed lower bound on the true frequency).
//!
//! Both are allocation-free on [`record`](CountMinSketch::record) (all
//! storage is reserved at construction) and mergeable across threads or
//! processes, so per-worker sketches can be folded into a global one.
//! Determinism: for a fixed seed, identical record sequences produce
//! identical sketches, and merges are order-insensitive for `CountMinSketch`
//! and deterministic (input-order-defined) for `SpaceSaving`.

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
///
/// Used to derive per-row count-min hash functions and table probes.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Error returned when merging sketches with incompatible shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchMismatch;

impl std::fmt::Display for SketchMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("sketch dimensions or seed differ; cannot merge")
    }
}

/// A count-min sketch: `depth` rows of `width` saturating counters.
///
/// `estimate` never underestimates the true count; the overestimate is
/// bounded by the collision mass `N / width` per row, minimized over rows.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    seed: u64,
    /// `depth * width` counters, row-major. Saturating on add.
    rows: Vec<u64>,
    /// Total weight recorded (saturating).
    total: u64,
}

impl CountMinSketch {
    /// Create a sketch. `width` is rounded up to a power of two (min 16);
    /// `depth` is clamped to `1..=8`. The seed fixes the hash family, so
    /// two sketches are mergeable iff `width`, `depth`, and `seed` match.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        let width = width.max(16).next_power_of_two();
        let depth = depth.clamp(1, 8);
        CountMinSketch { width, depth, seed, rows: vec![0; width * depth], total: 0 }
    }

    /// Counter index for `key` in `row`.
    #[inline]
    fn slot(&self, row: usize, key: u64) -> usize {
        // Each row gets an independent hash by folding the row index into
        // the seed before mixing.
        let h = mix64(key ^ mix64(self.seed ^ row as u64));
        row * self.width + (h as usize & (self.width - 1))
    }

    /// Add `weight` occurrences of `key`. Never allocates; saturates
    /// instead of wrapping.
    #[inline]
    pub fn record(&mut self, key: u64, weight: u64) {
        for row in 0..self.depth {
            let slot = self.slot(row, key);
            let c = &mut self.rows[slot];
            *c = c.saturating_add(weight);
        }
        self.total = self.total.saturating_add(weight);
    }

    /// Estimated count for `key`: the minimum over rows. Never less than
    /// the true count recorded (absent saturation).
    pub fn estimate(&self, key: u64) -> u64 {
        let mut best = u64::MAX;
        for row in 0..self.depth {
            best = best.min(self.rows[self.slot(row, key)]);
        }
        best
    }

    /// Total weight recorded into the sketch.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Row width (always a power of two).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Fold `other` into `self` counter-wise. Requires identical shape and
    /// seed: row hashes differ otherwise and the merged estimates would be
    /// meaningless.
    pub fn merge(&mut self, other: &CountMinSketch) -> Result<(), SketchMismatch> {
        if self.width != other.width || self.depth != other.depth || self.seed != other.seed {
            return Err(SketchMismatch);
        }
        for (c, o) in self.rows.iter_mut().zip(other.rows.iter()) {
            *c = c.saturating_add(*o);
        }
        self.total = self.total.saturating_add(other.total);
        Ok(())
    }

    /// Zero all counters, keeping the shape and seed.
    pub fn reset(&mut self) {
        self.rows.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }
}

/// One tracked heavy hitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopEntry {
    /// The tracked key.
    pub key: u64,
    /// Upper-bound count (true count ≤ `count`).
    pub count: u64,
    /// Error inherited from evictions (true count ≥ `count - err`).
    pub err: u64,
}

/// Space-saving top-K tracker (Metwally et al., "Efficient computation of
/// frequent and top-k elements in data streams").
///
/// Tracks at most `cap` keys. A new key evicts the current minimum-count
/// entry and inherits its count as error. `record` is a linear scan over
/// at most `cap` entries — O(K) with K small (≤ a few hundred) — and never
/// allocates after construction.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    cap: usize,
    entries: Vec<TopEntry>,
}

impl SpaceSaving {
    /// Create a tracker holding at most `cap` keys (min 1). All storage is
    /// reserved up front so `record` never allocates.
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        SpaceSaving { cap, entries: Vec::with_capacity(cap) }
    }

    /// Add `weight` occurrences of `key`.
    ///
    /// Deterministic: ties on the minimum are broken by the lowest slot
    /// index, and slot order is a pure function of the record sequence.
    #[inline]
    pub fn record(&mut self, key: u64, weight: u64) {
        let mut min_at = 0usize;
        let mut min_count = u64::MAX;
        for (i, e) in self.entries.iter_mut().enumerate() {
            if e.key == key {
                e.count = e.count.saturating_add(weight);
                return;
            }
            if e.count < min_count {
                min_count = e.count;
                min_at = i;
            }
        }
        if self.entries.len() < self.cap {
            // Capacity was reserved in `new`; this push never reallocates.
            self.entries.push(TopEntry { key, count: weight, err: 0 });
            return;
        }
        // Evict the minimum: the newcomer inherits its count as error.
        let e = &mut self.entries[min_at];
        e.key = key;
        e.err = e.count;
        e.count = e.count.saturating_add(weight);
    }

    /// Tracked entries, highest count first (ties: lower key first).
    pub fn top(&self) -> Vec<TopEntry> {
        let mut out = self.entries.clone();
        out.sort_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
        out
    }

    /// Number of keys currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of tracked keys.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Fold `other` into `self` (the SMED merge): shared keys add counts
    /// and errors; new keys are inserted with their counts, evicting
    /// minima as in `record`. Deterministic given both inputs: `other`'s
    /// entries are folded in descending-count order.
    pub fn merge(&mut self, other: &SpaceSaving) {
        for o in other.top() {
            let mut min_at = 0usize;
            let mut min_count = u64::MAX;
            let mut found = false;
            for (i, e) in self.entries.iter_mut().enumerate() {
                if e.key == o.key {
                    e.count = e.count.saturating_add(o.count);
                    e.err = e.err.saturating_add(o.err);
                    found = true;
                    break;
                }
                if e.count < min_count {
                    min_count = e.count;
                    min_at = i;
                }
            }
            if found {
                continue;
            }
            if self.entries.len() < self.cap {
                self.entries.push(o);
                continue;
            }
            let evicted = self.entries[min_at].count;
            self.entries[min_at] = TopEntry {
                key: o.key,
                count: o.count.saturating_add(evicted),
                err: o.err.saturating_add(evicted),
            };
        }
    }

    /// Forget all tracked keys, keeping the capacity.
    pub fn reset(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic pseudo-random key stream (splitmix64 sequence).
    fn stream(seed: u64, len: usize, domain: u64) -> Vec<u64> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                mix64(state) % domain
            })
            .collect()
    }

    #[test]
    fn count_min_never_underestimates_and_bounds_overestimate() {
        let keys = stream(7, 20_000, 512);
        let mut cm = CountMinSketch::new(1024, 4, 42);
        let mut exact = std::collections::HashMap::new();
        for &k in &keys {
            cm.record(k, 1);
            *exact.entry(k).or_insert(0u64) += 1;
        }
        assert_eq!(cm.total(), keys.len() as u64);
        let mut worst = 0u64;
        for (&k, &true_count) in &exact {
            let est = cm.estimate(k);
            assert!(est >= true_count, "underestimate for {k}: {est} < {true_count}");
            worst = worst.max(est - true_count);
        }
        // Expected collision mass per row is N/width ≈ 19.5; with four
        // independent rows the min is far below the single-row bound.
        // Allow 4x headroom so the test is not seed-sensitive.
        let bound = 4 * (keys.len() as u64) / cm.width() as u64;
        assert!(worst <= bound.max(8), "overestimate {worst} exceeds bound {bound}");
    }

    #[test]
    fn count_min_merge_equals_single_sketch_and_requires_matching_shape() {
        let keys = stream(11, 10_000, 256);
        let (a_keys, b_keys) = keys.split_at(keys.len() / 2);
        let mut whole = CountMinSketch::new(512, 4, 9);
        let mut a = CountMinSketch::new(512, 4, 9);
        let mut b = CountMinSketch::new(512, 4, 9);
        for &k in &keys {
            whole.record(k, 1);
        }
        for &k in a_keys {
            a.record(k, 1);
        }
        for &k in b_keys {
            b.record(k, 1);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.total(), whole.total());
        for k in 0..256u64 {
            assert_eq!(a.estimate(k), whole.estimate(k), "merge diverged for key {k}");
        }
        // Shape or seed mismatches must refuse to merge.
        assert_eq!(a.merge(&CountMinSketch::new(1024, 4, 9)), Err(SketchMismatch));
        assert_eq!(a.merge(&CountMinSketch::new(512, 3, 9)), Err(SketchMismatch));
        assert_eq!(a.merge(&CountMinSketch::new(512, 4, 10)), Err(SketchMismatch));
    }

    #[test]
    fn space_saving_tracks_exact_counts_below_capacity() {
        let mut ss = SpaceSaving::new(8);
        for (key, n) in [(1u64, 5u64), (2, 3), (3, 9)] {
            for _ in 0..n {
                ss.record(key, 1);
            }
        }
        let top = ss.top();
        assert_eq!(top.len(), 3);
        assert_eq!((top[0].key, top[0].count, top[0].err), (3, 9, 0));
        assert_eq!((top[1].key, top[1].count, top[1].err), (1, 5, 0));
        assert_eq!((top[2].key, top[2].count, top[2].err), (2, 3, 0));
    }

    #[test]
    fn space_saving_eviction_order_and_error_accounting() {
        let mut ss = SpaceSaving::new(2);
        ss.record(10, 5);
        ss.record(20, 2);
        // Capacity reached: key 30 must evict the minimum (20, count 2),
        // inheriting its count as error.
        ss.record(30, 1);
        let top = ss.top();
        assert_eq!(top.len(), 2);
        assert_eq!((top[0].key, top[0].count, top[0].err), (10, 5, 0));
        assert_eq!((top[1].key, top[1].count, top[1].err), (30, 3, 2));
        // Guaranteed lower bound: count - err ≤ true count.
        assert!(top[1].count - top[1].err <= 1);
        // A further eviction replaces the new minimum (30, count 3) and
        // stacks its count into the newcomer's error.
        ss.record(40, 1);
        let top = ss.top();
        assert_eq!((top[1].key, top[1].count, top[1].err), (40, 4, 3));
    }

    #[test]
    fn space_saving_saturates_at_capacity_and_ties_break_low_slot() {
        let mut ss = SpaceSaving::new(4);
        for k in 0..4u64 {
            ss.record(k, 1);
        }
        assert_eq!(ss.len(), ss.capacity());
        // All counts tie at 1: the eviction must hit slot 0 (key 0).
        ss.record(99, 1);
        assert_eq!(ss.len(), 4, "capacity must not grow");
        let keys: Vec<u64> = ss.top().iter().map(|e| e.key).collect();
        assert!(keys.contains(&99));
        assert!(!keys.contains(&0), "lowest slot should have been evicted");
        assert!(keys.contains(&1) && keys.contains(&2) && keys.contains(&3));
    }

    #[test]
    fn space_saving_merge_is_deterministic_and_finds_heavy_hitters() {
        // A skewed stream: keys 0..8 are heavy, the rest are noise.
        let mut keys = Vec::new();
        for hot in 0..8u64 {
            for _ in 0..(200 - 10 * hot) {
                keys.push(hot);
            }
        }
        keys.extend(stream(3, 2_000, 4_096).into_iter().map(|k| k + 100));
        // Deterministic interleave of heavy and noise keys.
        let order = stream(5, keys.len(), keys.len() as u64);
        let shuffled: Vec<u64> = order.iter().map(|&i| keys[i as usize]).collect();

        let (left, right) = shuffled.split_at(shuffled.len() / 2);
        let run = |part: &[u64]| {
            let mut ss = SpaceSaving::new(64);
            for &k in part {
                ss.record(k, 1);
            }
            ss
        };
        let mut merged_a = run(left);
        merged_a.merge(&run(right));
        let mut merged_b = run(left);
        merged_b.merge(&run(right));
        // Same inputs, same merge order: identical results.
        assert_eq!(merged_a.top(), merged_b.top());
        // Every heavy hitter survives the merge in the top 8 (inherited
        // eviction error can perturb relative order, not membership).
        let mut top_keys: Vec<u64> = merged_a.top().iter().take(8).map(|e| e.key).collect();
        top_keys.sort_unstable();
        assert_eq!(top_keys, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        // Counts remain upper bounds on the true frequency.
        for e in merged_a.top().iter().take(8) {
            let true_count = shuffled.iter().filter(|&&k| k == e.key).count() as u64;
            assert!(e.count >= true_count);
            assert!(e.count - e.err <= true_count);
        }
    }
}
