//! Rolling-window histograms: lock-light rings of per-slot deltas.
//!
//! The metric registry's histograms ([`crate::hist`]) are cumulative
//! since boot — they can say "10M requests so far" but not "p99 degraded
//! in the last minute", which is the question an SLO dashboard actually
//! asks. This module layers a **ring of per-second delta histograms** on
//! top of the same log2 buckets: recording lands one observation in the
//! slot owned by the current second, and a *view* merges every slot
//! younger than the requested window into one [`HistSnapshot`], from
//! which p50/p90/p99 and a request rate fall out.
//!
//! Deltas, not cumulative snapshots, back the ring on purpose: a slot
//! that ages out of every window simply stops being merged — there is no
//! subtraction, no pairing of "snapshot at T" with "snapshot at T−60",
//! and a reader never needs two coordinated reads to be correct. Each
//! slot is claimed for a new second with one CAS on its stamp; the claim
//! resets the slot's buckets and every recorder thereafter does plain
//! relaxed fetch-adds. Races at a second boundary can misattribute (or,
//! between a claim's CAS and its reset, drop) a handful of samples into
//! a neighboring second — bounded, harmless noise for monitoring, and
//! the price of a record path with **no locks and no allocation**.
//!
//! Two ring flavors:
//!
//! * [`WindowRing`] — full log2 histogram per slot, for latency
//!   distributions (quantiles + rate per window);
//! * [`CounterRing`] — one counter per slot, for windowed event rates
//!   (requests, errors) where a distribution is not needed.
//!
//! A process-global registry ([`ring`], [`counter_ring`], [`views`])
//! mirrors the metric registry's shape so the serve layer can render
//! every registered ring into `/metrics` and `/status` generically.
//! [`STANDARD_WINDOWS`] fixes the two views every consumer shares: 1m
//! and 5m.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::hist::{HistSnapshot, Histogram};

/// Ring capacity in one-second slots. Sized to hold the largest standard
/// window (5m = 300 slots) plus slack for the slot currently filling and
/// boundary skew, so a 5m view never merges a slot that has wrapped.
pub const SLOTS: usize = 330;

/// The window views every consumer renders: `(label, seconds)`.
pub const STANDARD_WINDOWS: [(&str, u64); 2] = [("1m", 60), ("5m", 300)];

/// One slot: the second it belongs to (`0` = never used; stored as
/// `second + 1`) and that second's delta histogram.
#[derive(Debug)]
struct Slot {
    stamp: AtomicU64,
    hist: Histogram,
}

/// Aggregated statistics over one window of a ring.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WindowStats {
    /// Observations inside the window.
    pub count: u64,
    /// Sum of observed values inside the window (wrapping).
    pub sum: u64,
    /// Bucket-resolution p50 of the window (0 when empty).
    pub p50: u64,
    /// Bucket-resolution p90 of the window (0 when empty).
    pub p90: u64,
    /// Bucket-resolution p99 of the window (0 when empty).
    pub p99: u64,
    /// Observations per second over the window. Always finite: an empty
    /// window is rate 0, never NaN.
    pub rate: f64,
}

/// A rolling ring of per-second histogram deltas.
#[derive(Debug)]
pub struct WindowRing {
    epoch: Instant,
    slots: Vec<Slot>,
}

impl Default for WindowRing {
    fn default() -> Self {
        WindowRing::new()
    }
}

impl WindowRing {
    /// An empty ring of [`SLOTS`] one-second slots.
    #[must_use]
    pub fn new() -> Self {
        WindowRing {
            epoch: Instant::now(),
            slots: (0..SLOTS)
                .map(|_| Slot { stamp: AtomicU64::new(0), hist: Histogram::new() })
                .collect(),
        }
    }

    /// Seconds since this ring was created, offset by 1 so that slot
    /// stamp 0 can mean "never used".
    fn now_second(&self) -> u64 {
        self.epoch.elapsed().as_secs() + 1
    }

    /// Records one observation into the current second's slot. No locks,
    /// no allocation: one `Instant` read, at most one CAS (only on the
    /// first record of a new second), then relaxed fetch-adds.
    pub fn record(&self, value: u64) {
        self.record_at(value, self.now_second());
    }

    /// [`record`](Self::record) with an explicit second, for tests and
    /// benches that need deterministic slot placement.
    pub fn record_at(&self, value: u64, second: u64) {
        let slot = &self.slots[(second % self.slots.len() as u64) as usize];
        let stamp = slot.stamp.load(Ordering::Acquire);
        if stamp != second
            && slot
                .stamp
                .compare_exchange(stamp, second, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            // This thread claimed the slot for the new second: drop the
            // stale delta. A racing recorder between the CAS and this
            // reset can lose its sample — bounded monitoring noise.
            slot.hist.reset();
        }
        slot.hist.record(value);
    }

    /// Merges every slot younger than `window_secs` into one snapshot.
    /// The slot currently filling is included, so a view lags reality by
    /// at most nothing and leads it by at most one partial second.
    #[must_use]
    pub fn view(&self, window_secs: u64) -> WindowStats {
        self.view_at(window_secs, self.now_second())
    }

    /// [`view`](Self::view) with an explicit current second.
    #[must_use]
    pub fn view_at(&self, window_secs: u64, now_second: u64) -> WindowStats {
        let mut agg = HistSnapshot { buckets: Vec::new(), count: 0, sum: 0 };
        for slot in &self.slots {
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp != 0 && stamp <= now_second && now_second - stamp < window_secs {
                agg.merge(&slot.hist.snapshot());
            }
        }
        #[allow(clippy::cast_precision_loss)]
        let rate = if window_secs == 0 { 0.0 } else { agg.count as f64 / window_secs as f64 };
        WindowStats {
            count: agg.count,
            sum: agg.sum,
            p50: agg.quantile(0.5),
            p90: agg.quantile(0.9),
            p99: agg.quantile(0.99),
            rate,
        }
    }
}

/// A rolling ring of per-second counters — [`WindowRing`] without the
/// per-slot distribution, for windowed request/error rates.
#[derive(Debug)]
pub struct CounterRing {
    epoch: Instant,
    stamps: Vec<AtomicU64>,
    counts: Vec<AtomicU64>,
}

impl Default for CounterRing {
    fn default() -> Self {
        CounterRing::new()
    }
}

impl CounterRing {
    /// An empty ring of [`SLOTS`] one-second slots.
    #[must_use]
    pub fn new() -> Self {
        CounterRing {
            epoch: Instant::now(),
            stamps: (0..SLOTS).map(|_| AtomicU64::new(0)).collect(),
            counts: (0..SLOTS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn now_second(&self) -> u64 {
        self.epoch.elapsed().as_secs() + 1
    }

    /// Adds `n` to the current second's slot.
    pub fn add(&self, n: u64) {
        self.add_at(n, self.now_second());
    }

    /// [`add`](Self::add) with an explicit second.
    pub fn add_at(&self, n: u64, second: u64) {
        let i = (second % self.stamps.len() as u64) as usize;
        let stamp = self.stamps[i].load(Ordering::Acquire);
        if stamp != second
            && self.stamps[i]
                .compare_exchange(stamp, second, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            self.counts[i].store(0, Ordering::Relaxed);
        }
        self.counts[i].fetch_add(n, Ordering::Relaxed);
    }

    /// Total count over the trailing `window_secs` seconds.
    #[must_use]
    pub fn sum(&self, window_secs: u64) -> u64 {
        self.sum_at(window_secs, self.now_second())
    }

    /// [`sum`](Self::sum) with an explicit current second.
    #[must_use]
    pub fn sum_at(&self, window_secs: u64, now_second: u64) -> u64 {
        let mut total = 0u64;
        for (stamp, count) in self.stamps.iter().zip(&self.counts) {
            let stamp = stamp.load(Ordering::Acquire);
            if stamp != 0 && stamp <= now_second && now_second - stamp < window_secs {
                total += count.load(Ordering::Relaxed);
            }
        }
        total
    }
}

/// One registered ring's views, for rendering: the registry name plus
/// [`WindowStats`] per standard window label.
#[derive(Clone, Debug)]
pub struct RingViews {
    /// The registry name (dotted, e.g. `serve.http.latency_ns.query`).
    pub name: String,
    /// `(window label, stats)` per entry of the requested window set.
    pub windows: Vec<(&'static str, WindowStats)>,
}

#[derive(Default)]
struct WindowRegistry {
    rings: Mutex<HashMap<String, Arc<WindowRing>>>,
    counters: Mutex<HashMap<String, Arc<CounterRing>>>,
}

fn registry() -> &'static WindowRegistry {
    static GLOBAL: OnceLock<WindowRegistry> = OnceLock::new();
    GLOBAL.get_or_init(WindowRegistry::default)
}

/// A shared handle to the named global window ring, creating it empty.
///
/// # Panics
///
/// Panics only if the registry mutex is poisoned.
#[must_use]
pub fn ring(name: &str) -> Arc<WindowRing> {
    let mut map = registry().rings.lock().unwrap();
    if let Some(r) = map.get(name) {
        return Arc::clone(r);
    }
    let r = Arc::new(WindowRing::new());
    map.insert(name.to_owned(), Arc::clone(&r));
    r
}

/// A shared handle to the named global counter ring, creating it empty.
///
/// # Panics
///
/// Panics only if the registry mutex is poisoned.
#[must_use]
pub fn counter_ring(name: &str) -> Arc<CounterRing> {
    let mut map = registry().counters.lock().unwrap();
    if let Some(r) = map.get(name) {
        return Arc::clone(r);
    }
    let r = Arc::new(CounterRing::new());
    map.insert(name.to_owned(), Arc::clone(&r));
    r
}

/// Views of every registered [`WindowRing`] over the given windows,
/// sorted by name for deterministic rendering.
///
/// # Panics
///
/// Panics only if the registry mutex is poisoned.
#[must_use]
pub fn views(windows: &[(&'static str, u64)]) -> Vec<RingViews> {
    let map = registry().rings.lock().unwrap();
    let mut out: Vec<RingViews> = map
        .iter()
        .map(|(name, ring)| RingViews {
            name: name.clone(),
            windows: windows.iter().map(|&(label, secs)| (label, ring.view(secs))).collect(),
        })
        .collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_views_are_zero_and_finite() {
        let ring = WindowRing::new();
        let v = ring.view(60);
        assert_eq!(v, WindowStats::default());
        assert!(v.rate.is_finite());
        assert_eq!(v.p99, 0);
    }

    #[test]
    fn values_inside_the_window_aggregate_and_outside_expire() {
        let ring = WindowRing::new();
        // Seconds 100..160: one sample of 1000ns each.
        for s in 100..160 {
            ring.record_at(1000, s);
        }
        let v = ring.view_at(60, 159);
        assert_eq!(v.count, 60);
        assert_eq!(v.sum, 60_000);
        assert!((v.rate - 1.0).abs() < 1e-9);
        assert!(v.p50 >= 1000 && v.p50 < 2048, "log2 bucket bound: {}", v.p50);
        // 30 seconds later, half the samples have aged out of a 1m view.
        let later = ring.view_at(60, 189);
        assert_eq!(later.count, 30);
        // A 5m view still sees everything.
        assert_eq!(ring.view_at(300, 189).count, 60);
    }

    #[test]
    fn slot_reuse_after_wrap_drops_the_stale_delta() {
        let ring = WindowRing::new();
        ring.record_at(5, 7);
        // The same slot index, SLOTS seconds later: the old delta must
        // not leak into the new second.
        ring.record_at(9, 7 + SLOTS as u64);
        let v = ring.view_at(60, 7 + SLOTS as u64);
        assert_eq!(v.count, 1);
        assert_eq!(v.sum, 9);
    }

    #[test]
    fn quantiles_track_the_window_not_the_lifetime() {
        let ring = WindowRing::new();
        // An old second full of slow samples, then a fresh second of
        // fast ones: the 1m view at the later time sees only the fast.
        for _ in 0..100 {
            ring.record_at(1_000_000, 10);
        }
        for _ in 0..100 {
            ring.record_at(100, 500);
        }
        let v = ring.view_at(60, 500);
        assert_eq!(v.count, 100);
        assert!(v.p99 < 1000, "old slow samples leaked into the window: {}", v.p99);
    }

    #[test]
    fn counter_ring_sums_and_expires() {
        let ring = CounterRing::new();
        ring.add_at(2, 100);
        ring.add_at(3, 130);
        assert_eq!(ring.sum_at(60, 130), 5);
        assert_eq!(ring.sum_at(60, 185), 3, "second 100 aged out");
        assert_eq!(ring.sum_at(60, 300), 0);
        // Wrap reuse resets the slot.
        ring.add_at(7, 100 + SLOTS as u64);
        assert_eq!(ring.sum_at(60, 100 + SLOTS as u64), 7);
    }

    #[test]
    fn concurrent_recording_within_one_second_loses_nothing() {
        let ring = WindowRing::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        ring.record_at(i, 42);
                    }
                });
            }
        });
        assert_eq!(ring.view_at(60, 42).count, 80_000);
    }

    #[test]
    fn registry_shares_rings_by_name_and_views_are_sorted() {
        let a = ring("test.window.alpha");
        a.record_at(10, 5);
        let a2 = ring("test.window.alpha");
        assert_eq!(a2.view_at(60, 5).count, 1, "same name, same ring");
        let _ = ring("test.window.beta");
        let all = views(&STANDARD_WINDOWS);
        let names: Vec<&str> = all
            .iter()
            .map(|r| r.name.as_str())
            .filter(|n| n.starts_with("test.window."))
            .collect();
        assert_eq!(names, ["test.window.alpha", "test.window.beta"]);
        let alpha = all.iter().find(|r| r.name == "test.window.alpha").unwrap();
        assert_eq!(alpha.windows.len(), 2);
        assert_eq!(alpha.windows[0].0, "1m");
    }
}
