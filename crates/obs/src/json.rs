//! A minimal JSON value type with a writer and a strict parser.
//!
//! Objects preserve insertion order (they are association lists, not
//! maps), which keeps persisted indexes and metric reports diffable. The
//! parser is strict: the whole input must be one JSON value, trailing
//! garbage is an error, and duplicate keys are kept as-is (lookups find
//! the first).

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number. Integers up to 2^53 round-trip exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered association list).
    Obj(Vec<(String, Json)>),
}

/// A parse or decode failure, with a byte offset for parse errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input (0 for decode-stage errors).
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Shorthand for a decode-stage (non-positional) error.
#[must_use]
pub fn decode_err(message: impl Into<String>) -> JsonError {
    JsonError { message: message.into(), offset: 0 }
}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Number from any unsigned integer (exact up to 2^53).
    #[must_use]
    pub fn num_u(n: u64) -> Json {
        #[allow(clippy::cast_precision_loss)]
        Json::Num(n as f64)
    }

    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required-key lookup with a decode error on absence.
    ///
    /// # Errors
    ///
    /// Fails if `self` is not an object or lacks `key`.
    pub fn want(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| decode_err(format!("missing key `{key}`")))
    }

    /// The string payload, if any.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if any.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.0e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if any.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if any.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload, if any.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Appends compact JSON text to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from the entire input.
    ///
    /// # Errors
    ///
    /// Fails on malformed input or trailing non-whitespace.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }
}

fn write_num(n: f64, out: &mut String) {
    if n.is_finite() {
        // Integers print without a fractional part.
        #[allow(clippy::cast_possible_truncation)]
        if n.fract() == 0.0 && n.abs() < 9.0e15 {
            let _ = fmt::Write::write_fmt(out, format_args!("{}", n as i64));
        } else {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
    } else {
        out.push_str("null"); // JSON has no NaN/Inf.
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_owned(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates degrade to the replacement char;
                            // the writer never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj(vec![
            ("name", Json::Str("a\"b\\c\nd".to_owned())),
            ("n", Json::Num(42.0)),
            ("neg", Json::Num(-3.5)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("list", Json::Arr(vec![Json::num_u(1), Json::num_u(2), Json::Str(String::new())])),
            ("nested", Json::obj(vec![("k", Json::Arr(vec![]))])),
        ]);
        let text = v.to_text();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::num_u(7).to_text(), "7");
        assert_eq!(Json::Num(-2.0).to_text(), "-2");
        assert_eq!(Json::Num(1.25).to_text(), "1.25");
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = Json::parse(" { \"k\" : [ 1 , \"\\u0041π\" ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap()[1].as_str(), Some("Aπ"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{not json", "[1,]", "{\"a\":}", "nul", "1 2", "{\"a\" 1}", "\"open"] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn strict_about_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{}").is_ok());
    }

    #[test]
    fn accessors_and_want() {
        let v = Json::obj(vec![("a", Json::num_u(3))]);
        assert_eq!(v.want("a").unwrap().as_u64(), Some(3));
        assert!(v.want("b").is_err());
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
    }
}
