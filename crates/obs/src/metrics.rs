//! The process-global metric registry: named counters, gauges, stage
//! timing aggregates, and histograms.
//!
//! Counters and gauges always record (one short mutex-protected map
//! operation), on the convention that **hot loops keep local tallies and
//! flush once per call** — e.g. the DFS counts expansions in a local
//! `u64` and calls [`add`] once per enumeration. Stage *timing* is gated
//! on the [`enabled`] flag (set by the CLI's `--metrics` flags) so that
//! an uninstrumented run never calls `Instant::now`.
//!
//! Metric names are dotted lowercase paths, `<area>.<what>` — see the
//! README's metric schema table for the full list.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::{HistSnapshot, Histogram};

/// One stage's accumulated wall-clock time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageStat {
    /// Completed span count.
    pub count: u64,
    /// Total nanoseconds across spans.
    pub total_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
}

impl StageStat {
    /// Mean nanoseconds per span.
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// A registry of named metrics. The pipeline uses the process-global one
/// (via the free functions in this module); tests can make their own.
#[derive(Debug, Default)]
pub struct Registry {
    enabled: AtomicBool,
    counters: Mutex<HashMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<HashMap<String, u64>>,
    stages: Mutex<HashMap<String, StageStat>>,
    hists: Mutex<HashMap<String, Arc<Histogram>>>,
}

/// A point-in-time copy of a registry, with deterministic ordering.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Stage timing aggregates by name.
    pub stages: BTreeMap<String, StageStat>,
    /// Histogram states by name.
    pub hists: BTreeMap<String, HistSnapshot>,
}

impl Snapshot {
    /// Value of a counter, if it was ever touched.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Value of a gauge, if it was ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Timing aggregate of a stage, if any span completed.
    #[must_use]
    pub fn stage(&self, name: &str) -> Option<StageStat> {
        self.stages.get(name).copied()
    }
}

impl Registry {
    /// An empty, disabled registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Turns span timing on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether span timing is on.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// A shared handle to a named counter, creating it at zero.
    ///
    /// # Panics
    ///
    /// Panics only if the registry mutex is poisoned.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.counters.lock().unwrap();
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(AtomicU64::new(0));
        map.insert(name.to_owned(), Arc::clone(&c));
        c
    }

    /// Adds `delta` to a named counter.
    pub fn add(&self, name: &str, delta: u64) {
        self.counter(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one to a named counter.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets a named gauge to `value` (last write wins).
    ///
    /// # Panics
    ///
    /// Panics only if the registry mutex is poisoned.
    pub fn gauge_set(&self, name: &str, value: u64) {
        self.gauges.lock().unwrap().insert(name.to_owned(), value);
    }

    /// A shared handle to a named histogram, creating it empty.
    ///
    /// # Panics
    ///
    /// Panics only if the registry mutex is poisoned.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.hists.lock().unwrap();
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        map.insert(name.to_owned(), Arc::clone(&h));
        h
    }

    /// Folds one completed span into a stage aggregate.
    ///
    /// # Panics
    ///
    /// Panics only if the registry mutex is poisoned.
    pub fn record_stage(&self, name: &str, ns: u64) {
        let mut map = self.stages.lock().unwrap();
        let stat = map.entry(name.to_owned()).or_default();
        stat.count += 1;
        stat.total_ns += ns;
        stat.max_ns = stat.max_ns.max(ns);
    }

    /// Copies out everything recorded so far.
    ///
    /// # Panics
    ///
    /// Panics only if a registry mutex is poisoned.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: self.gauges.lock().unwrap().iter().map(|(k, &v)| (k.clone(), v)).collect(),
            stages: self.stages.lock().unwrap().iter().map(|(k, &v)| (k.clone(), v)).collect(),
            hists: self
                .hists
                .lock()
                .unwrap()
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }

    /// Clears every metric (the enabled flag is left alone).
    ///
    /// # Panics
    ///
    /// Panics only if a registry mutex is poisoned.
    pub fn reset(&self) {
        self.counters.lock().unwrap().clear();
        self.gauges.lock().unwrap().clear();
        self.stages.lock().unwrap().clear();
        self.hists.lock().unwrap().clear();
    }
}

/// The process-global registry the pipeline records into.
#[must_use]
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Turns span timing on or off globally.
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

/// Whether span timing is on globally.
#[must_use]
pub fn enabled() -> bool {
    global().enabled()
}

/// Adds `delta` to a global counter.
pub fn add(name: &str, delta: u64) {
    global().add(name, delta);
}

/// Adds one to a global counter.
pub fn inc(name: &str) {
    global().inc(name);
}

/// Sets a global gauge.
pub fn gauge_set(name: &str, value: u64) {
    global().gauge_set(name, value);
}

/// A shared handle to a global histogram.
#[must_use]
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Snapshots the global registry.
#[must_use]
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Clears the global registry.
pub fn reset() {
    global().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let r = Registry::new();
        r.add("a.b", 2);
        r.inc("a.b");
        r.inc("c");
        let s = r.snapshot();
        assert_eq!(s.counter("a.b"), Some(3));
        assert_eq!(s.counter("c"), Some(1));
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn gauges_take_last_write() {
        let r = Registry::new();
        r.gauge_set("x", 10);
        r.gauge_set("x", 4);
        assert_eq!(r.snapshot().gauge("x"), Some(4));
    }

    #[test]
    fn stage_aggregates_fold() {
        let r = Registry::new();
        r.record_stage("s", 10);
        r.record_stage("s", 30);
        let st = r.snapshot().stage("s").unwrap();
        assert_eq!(st.count, 2);
        assert_eq!(st.total_ns, 40);
        assert_eq!(st.max_ns, 30);
        assert_eq!(st.mean_ns(), 20);
    }

    #[test]
    fn concurrent_increments_lose_nothing() {
        let r = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let r = &r;
                scope.spawn(move || {
                    let local = r.counter("hot");
                    for _ in 0..25_000 {
                        local.fetch_add(1, Ordering::Relaxed);
                    }
                    r.add("cold", 25_000);
                });
            }
        });
        let s = r.snapshot();
        assert_eq!(s.counter("hot"), Some(200_000));
        assert_eq!(s.counter("cold"), Some(200_000));
    }

    #[test]
    fn reset_clears_but_keeps_enabled() {
        let r = Registry::new();
        r.set_enabled(true);
        r.add("a", 1);
        r.gauge_set("g", 1);
        r.record_stage("s", 1);
        r.reset();
        let s = r.snapshot();
        assert!(s.counters.is_empty() && s.gauges.is_empty() && s.stages.is_empty());
        assert!(r.enabled());
    }
}
