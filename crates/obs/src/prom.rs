//! Prometheus text exposition rendering for metric snapshots.
//!
//! The `serve` mode's `GET /metrics` endpoint returns this format
//! (version 0.0.4 of the text exposition protocol): every line is a
//! `# HELP`, a `# TYPE`, or a `name{labels} value` sample. Names are
//! mangled mechanically from registry names — `prospector_` prefix, dots
//! become underscores, counters gain a `_total` suffix — so the mapping
//! back to the README's metric schema table is one string substitution,
//! not a lookup table:
//!
//! | registry                  | exposition                                |
//! |---------------------------|-------------------------------------------|
//! | counter `search.dfs_expansions` | `prospector_search_dfs_expansions_total` |
//! | gauge `engine.dist_cache.entries` | `prospector_engine_dist_cache_entries` |
//! | stage `search`            | `prospector_stage_*{stage="search"}`      |
//! | histogram `query.latency_ns` | `prospector_query_latency_ns{_bucket,_sum,_count}` |
//!
//! Histograms are the interesting case: the registry's fixed log2
//! buckets become cumulative `_bucket{le="..."}` series whose `le`
//! bounds are the buckets' inclusive upper limits (`0`, `1`, `3`, `7`,
//! ... — [`crate::hist::Histogram::bucket_limit`]), always terminated by
//! `le="+Inf"` equal to `_count`, exactly as the Prometheus histogram
//! contract requires.

use std::fmt::Write as _;

use crate::hist::{HistSnapshot, Histogram};
use crate::metrics::Snapshot;
use crate::window::RingViews;

/// Mangles a registry name into a Prometheus metric name: `prospector_`
/// prefix, every non-alphanumeric byte to `_`.
#[must_use]
pub fn metric_name(registry_name: &str) -> String {
    let mut out = String::with_capacity(registry_name.len() + 11);
    out.push_str("prospector_");
    for c in registry_name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label *value* per the exposition format: backslash, double
/// quote, and newline must be backslash-escaped inside the quotes.
#[must_use]
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Writes one gauge sample with an f64 value, coercing non-finite
/// values to 0 so a scrape never sees `NaN`/`inf` from an empty window.
fn sample_f64(out: &mut String, name: &str, labels: &str, value: f64) {
    let value = if value.is_finite() { value } else { 0.0 };
    let _ = writeln!(out, "{name}{labels} {value}");
}

fn sample(out: &mut String, name: &str, labels: &str, value: u64) {
    let _ = writeln!(out, "{name}{labels} {value}");
}

fn header(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn render_histogram(out: &mut String, name: &str, h: &HistSnapshot) {
    header(out, name, "histogram", "Log2-bucket histogram from the metric registry.");
    let mut cumulative = 0u64;
    let last_nonempty = h.buckets.iter().rposition(|&b| b > 0).unwrap_or(0);
    for (i, &b) in h.buckets.iter().enumerate().take(last_nonempty + 1) {
        cumulative += b;
        let le = Histogram::bucket_limit(i);
        if le == u64::MAX {
            // The overflow bucket is the +Inf line below.
            break;
        }
        sample(out, name, &format!("_bucket{{le=\"{le}\"}}"), cumulative);
    }
    sample(out, name, "_bucket{le=\"+Inf\"}", h.count);
    sample(out, name, "_sum", h.sum);
    sample(out, name, "_count", h.count);
}

/// Renders a snapshot in the Prometheus text exposition format.
#[must_use]
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, &value) in &snap.counters {
        let prom = format!("{}_total", metric_name(name));
        header(&mut out, &prom, "counter", &format!("Registry counter `{name}`."));
        sample(&mut out, &prom, "", value);
    }
    for (name, &value) in &snap.gauges {
        let prom = metric_name(name);
        header(&mut out, &prom, "gauge", &format!("Registry gauge `{name}`."));
        sample(&mut out, &prom, "", value);
    }
    if !snap.stages.is_empty() {
        header(
            &mut out,
            "prospector_stage_count",
            "counter",
            "Completed spans per pipeline stage.",
        );
        for (name, stat) in &snap.stages {
            sample(&mut out, "prospector_stage_count", &format!("{{stage=\"{}\"}}", escape_label(name)), stat.count);
        }
        header(
            &mut out,
            "prospector_stage_total_ns",
            "counter",
            "Total wall-clock nanoseconds per pipeline stage.",
        );
        for (name, stat) in &snap.stages {
            sample(
                &mut out,
                "prospector_stage_total_ns",
                &format!("{{stage=\"{}\"}}", escape_label(name)),
                stat.total_ns,
            );
        }
        header(
            &mut out,
            "prospector_stage_max_ns",
            "gauge",
            "Longest single span per pipeline stage, in nanoseconds.",
        );
        for (name, stat) in &snap.stages {
            sample(
                &mut out,
                "prospector_stage_max_ns",
                &format!("{{stage=\"{}\"}}", escape_label(name)),
                stat.max_ns,
            );
        }
    }
    for (name, h) in &snap.hists {
        render_histogram(&mut out, &metric_name(name), h);
    }
    out
}

/// Renders rolling-window views ([`crate::window::views`]) as gauges:
/// for each ring, `<name>_window{win,q}` quantile gauges (value units
/// match what was recorded), `<name>_window_rate{win}` (events/second,
/// always finite — 0 for an empty window, never NaN), and
/// `<name>_window_count{win}`.
#[must_use]
pub fn render_windows(views: &[RingViews]) -> String {
    let mut out = String::new();
    for rv in views {
        let base = format!("{}_window", metric_name(&rv.name));
        header(
            &mut out,
            &base,
            "gauge",
            &format!("Rolling-window quantiles of `{}`.", rv.name),
        );
        for (label, stats) in &rv.windows {
            let win = escape_label(label);
            for (q, v) in [("p50", stats.p50), ("p90", stats.p90), ("p99", stats.p99)] {
                sample(&mut out, &base, &format!("{{win=\"{win}\",q=\"{q}\"}}"), v);
            }
        }
        let rate = format!("{base}_rate");
        header(&mut out, &rate, "gauge", &format!("Rolling-window event rate of `{}` (per second).", rv.name));
        for (label, stats) in &rv.windows {
            sample_f64(&mut out, &rate, &format!("{{win=\"{}\"}}", escape_label(label)), stats.rate);
        }
        let count = format!("{base}_count");
        header(&mut out, &count, "gauge", &format!("Rolling-window event count of `{}`.", rv.name));
        for (label, stats) in &rv.windows {
            sample(&mut out, &count, &format!("{{win=\"{}\"}}", escape_label(label)), stats.count);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn names_mangle_mechanically() {
        assert_eq!(metric_name("search.dfs_expansions"), "prospector_search_dfs_expansions");
        assert_eq!(metric_name("engine.dist-cache.entries"), "prospector_engine_dist_cache_entries");
    }

    #[test]
    fn renders_counters_gauges_and_stages() {
        let r = Registry::new();
        r.add("search.dfs_expansions", 7);
        r.gauge_set("graph.nodes", 42);
        r.record_stage("search", 1_000);
        let text = render(&r.snapshot());
        assert!(text.contains("# TYPE prospector_search_dfs_expansions_total counter"));
        assert!(text.contains("prospector_search_dfs_expansions_total 7"));
        assert!(text.contains("# TYPE prospector_graph_nodes gauge"));
        assert!(text.contains("prospector_graph_nodes 42"));
        assert!(text.contains("prospector_stage_count{stage=\"search\"} 1"));
        assert!(text.contains("prospector_stage_total_ns{stage=\"search\"} 1000"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_with_inf() {
        let r = Registry::new();
        let h = r.histogram("query.latency_ns");
        for v in [0, 1, 2, 3, 100] {
            h.record(v);
        }
        let text = render(&r.snapshot());
        assert!(text.contains("# TYPE prospector_query_latency_ns histogram"));
        // Buckets: le=0 holds the zero, le=1 adds the one, le=3 the 2 and
        // 3, le=127 the 100.
        assert!(text.contains("prospector_query_latency_ns_bucket{le=\"0\"} 1"), "{text}");
        assert!(text.contains("prospector_query_latency_ns_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("prospector_query_latency_ns_bucket{le=\"3\"} 4"), "{text}");
        assert!(text.contains("prospector_query_latency_ns_bucket{le=\"127\"} 5"), "{text}");
        assert!(text.contains("prospector_query_latency_ns_bucket{le=\"+Inf\"} 5"), "{text}");
        assert!(text.contains("prospector_query_latency_ns_sum 106"), "{text}");
        assert!(text.contains("prospector_query_latency_ns_count 5"), "{text}");
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{le=") && !l.contains("+Inf")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "{line}");
            last = v;
        }
    }

    #[test]
    fn zero_count_histogram_renders_valid_cumulative_buckets() {
        let r = Registry::new();
        let _ = r.histogram("never.recorded");
        let text = render(&r.snapshot());
        assert!(text.contains("# TYPE prospector_never_recorded histogram"), "{text}");
        // A zero-count histogram still emits a well-formed cumulative
        // series ending with the mandatory +Inf bucket equal to _count.
        assert!(text.contains("prospector_never_recorded_bucket{le=\"0\"} 0"), "{text}");
        assert!(text.contains("prospector_never_recorded_bucket{le=\"+Inf\"} 0"), "{text}");
        assert!(text.contains("prospector_never_recorded_sum 0"), "{text}");
        assert!(text.contains("prospector_never_recorded_count 0"), "{text}");
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{le=") && !l.contains("+Inf")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "not cumulative: {line}");
            last = v;
        }
    }

    #[test]
    fn empty_window_gauges_are_finite_f64() {
        use crate::window::{WindowRing, RingViews};
        let ring = WindowRing::new();
        let views = vec![RingViews {
            name: "serve.http.latency_ns.query".to_owned(),
            windows: vec![("1m", ring.view(60)), ("5m", ring.view(300))],
        }];
        let text = render_windows(&views);
        assert!(
            text.contains("prospector_serve_http_latency_ns_query_window{win=\"1m\",q=\"p99\"} 0"),
            "{text}"
        );
        assert!(text.contains("_window_rate{win=\"1m\"} 0"), "{text}");
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            let parsed: f64 = value.parse().unwrap_or_else(|_| panic!("bad value: {line}"));
            assert!(parsed.is_finite(), "non-finite window gauge: {line}");
        }
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
    }

    #[test]
    fn label_values_are_escape_safe() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b"), "a\\\"b");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("a\nb"), "a\\nb");
        // A hostile stage name renders with its quote and newline escaped
        // so the sample stays one well-formed line.
        let r = Registry::new();
        r.record_stage("evil\"stage\nname", 5);
        let text = render(&r.snapshot());
        let line = text
            .lines()
            .find(|l| l.starts_with("prospector_stage_count"))
            .expect("stage series rendered");
        assert!(line.contains("{stage=\"evil\\\"stage\\nname\"}"), "{line}");
        assert_eq!(line.matches('\n').count(), 0);
    }

    #[test]
    fn every_line_is_help_type_or_sample() {
        let r = Registry::new();
        r.add("a.b", 1);
        r.gauge_set("c", 2);
        r.record_stage("s", 3);
        r.histogram("h").record(9);
        for line in render(&r.snapshot()).lines() {
            if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
                continue;
            }
            let (name_labels, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line}");
            let name = name_labels.split('{').next().unwrap();
            assert!(!name.is_empty());
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad name in {line}"
            );
        }
    }
}
