//! Umbrella crate for the Prospector reproduction workspace.
//!
//! Re-exports every workspace crate under a short alias so the runnable
//! examples in `examples/` and the cross-crate integration tests in `tests/`
//! can use one import root.

pub use jungloid_apidef as apidef;
pub use jungloid_dataflow as dataflow;
pub use jungloid_minijava as minijava;
pub use jungloid_typesys as typesys;
pub use prospector_core as core;
pub use prospector_corpora as corpora;
pub use prospector_study as study;
